"""Degenerate-input audit: empty programs, load-free threads, zero
iterations, empty signature streams.  Regression tests so these keep
working as the pipeline grows."""

from repro.analysis.coverage import (
    coverage_summary,
    discovery_rate,
    saturation_curve,
)
from repro.harness import Campaign
from repro.instrument import SignatureCodec, candidate_sources
from repro.instrument.signature import Signature
from repro.isa import TestProgram, load, store
from repro.lint import gate_iterations, lint_program
from repro.testgen import TestConfig


def _empty_program():
    return TestProgram.from_ops([[]], num_addresses=1)


def _load_free_program():
    """One storing thread, one loading thread; the storer has no loads."""
    return TestProgram.from_ops(
        [[store(0, 0, 0, 1)], [load(1, 0, 0)]], num_addresses=1)


class TestEmptyProgram:
    def test_codec_is_degenerate_but_valid(self):
        codec = SignatureCodec(_empty_program(), 32)
        assert codec.cardinality == 1
        assert codec.total_words == 1

    def test_candidate_sources_is_empty(self):
        assert candidate_sources(_empty_program()) == {}

    def test_lint_flags_zero_entropy_without_errors(self):
        report = lint_program(_empty_program(), register_width=32)
        assert not report.errors
        assert report.zero_entropy
        assert {f.rule for f in report.findings} == {"MTC010"}

    def test_campaign_runs_and_collapses_to_one_signature(self):
        result = Campaign(program=_empty_program(), config=None,
                          seed=0).run(3)
        assert result.iterations == 3
        assert result.unique_signatures == 1

    def test_gate_skips_all_but_one_iteration(self):
        report = lint_program(_empty_program(), register_width=32)
        decision = gate_iterations(report, "skip", 10)
        assert decision.run_iterations == 1
        assert decision.skipped_iterations == 9


class TestLoadFreeThread:
    def test_storer_thread_has_single_word_table(self):
        codec = SignatureCodec(_load_free_program(), 32)
        assert [t.num_words for t in codec.tables] == [1, 1]
        assert codec.cardinality == 2

    def test_lint_is_clean(self):
        report = lint_program(_load_free_program(), register_width=32)
        assert not report.errors
        assert not report.zero_entropy

    def test_campaign_observes_both_outcomes(self):
        result = Campaign(program=_load_free_program(), config=None,
                          seed=0).run(30)
        assert result.unique_signatures == 2


class TestZeroIterationRun:
    def test_campaign_result_is_empty(self):
        config = TestConfig(threads=2, ops_per_thread=6, addresses=2,
                            seed=0)
        result = Campaign(config=config, seed=0).run(0)
        assert result.iterations == 0
        assert result.unique_signatures == 0
        assert result.signature_counts == {}

    def test_coverage_summary_handles_empty_campaign(self):
        config = TestConfig(threads=2, ops_per_thread=6, addresses=2,
                            seed=0)
        summary = coverage_summary(Campaign(config=config, seed=0).run(0))
        assert summary.unique_fraction == 0.0
        assert summary.space_fraction == 0.0
        assert summary.next_new_probability == 1.0
        assert not summary.saturated


class TestEmptySignatureStream:
    def test_saturation_curve_of_nothing(self):
        assert saturation_curve([]) == []

    def test_discovery_rate_of_nothing(self):
        assert discovery_rate([]) == 0.0
        assert discovery_rate([1]) == 1.0

    def test_wordless_signature_key(self):
        # regression: max() over an empty generator used to raise
        signature = Signature(words=())
        assert signature.interleaved_key() == ()
