"""Integration tests exercising the full Figure-1 flow across modules."""

import pytest

from repro import obs
from repro.analysis import uniqueness
from repro.harness import Campaign, run_and_check
from repro.instrument import intrusiveness
from repro.checker.results import describe_cycle
from repro.graph import GraphBuilder
from repro.mcm import TSO
from repro.sim.detailed import DetailedExecutor
from repro.sim.faults import Bug, FaultConfig
from repro.testgen import TestConfig, generate_suite


class TestFullFlowBothPlatforms:
    @pytest.mark.parametrize("isa", ["arm", "x86"])
    def test_generate_instrument_execute_check(self, isa):
        cfg = TestConfig(isa=isa, threads=4, ops_per_thread=30, addresses=16, seed=6)
        campaign, result, outcome = run_and_check(cfg, 200)
        # no violations on a correct machine
        assert not outcome.collective.violations
        # collective checking did less sorting work than the baseline
        if result.unique_signatures > 10:
            assert outcome.collective.sorted_vertices < outcome.baseline.sorted_vertices
        # duplicate executions were filtered before checking
        assert outcome.collective.num_graphs == result.unique_signatures

    def test_weak_platform_more_diverse_than_tso(self):
        """Figure 8's headline cross-platform observation."""
        uniq = {}
        for isa in ("arm", "x86"):
            cfg = TestConfig(isa=isa, threads=4, ops_per_thread=50,
                             addresses=32, seed=8)
            campaign = Campaign(config=cfg, seed=3)
            uniq[isa] = uniqueness(campaign.run(300)).unique
        assert uniq["arm"] > uniq["x86"]

    def test_false_sharing_increases_diversity(self):
        uniq = {}
        for wpl in (1, 16):
            cfg = TestConfig(isa="x86", threads=4, ops_per_thread=50,
                             addresses=64, words_per_line=wpl, seed=8)
            campaign = Campaign(config=cfg, seed=3)
            uniq[wpl] = uniqueness(campaign.run(250)).unique
        assert uniq[16] > uniq[1]

    def test_intrusiveness_small(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=50, addresses=32, seed=1)
        campaign = Campaign(config=cfg, seed=1)
        report = intrusiveness(campaign.program, campaign.codec)
        assert report.normalized < 0.2


class TestObservabilityEndToEnd:
    def test_campaign_produces_four_phase_span_tree(self):
        """A full campaign must cover the paper's Figure-1 pipeline:
        tests generation -> code instrumentation -> tests execution ->
        violation checking, all visible in the span tree."""
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=4)
        with obs.enabled_obs() as handle:
            campaign, result, outcome = run_and_check(cfg, 150)
            report = handle.report(meta={"command": "test"})
        obs.validate_report(report)
        names = obs.span_names(report)
        assert {"generate", "instrument", "execute", "check"} <= names
        # the checkers ran nested inside the check phase
        assert handle.tracer.node("check", "checker.collective").count == 1
        assert handle.tracer.node("check", "checker.baseline").count == 1

    def test_checker_counters_agree_with_check_report(self):
        from repro.checker.results import COMPLETE, INCREMENTAL, NO_RESORT

        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=30,
                         addresses=16, seed=6)
        with obs.enabled_obs() as handle:
            campaign, result, outcome = run_and_check(cfg, 200)
        metrics = handle.metrics
        collective = outcome.collective
        assert metrics.counter("checker.collective.graphs").value == \
            collective.num_graphs
        assert metrics.counter("checker.collective.violations").value == \
            len(collective.violations)
        assert metrics.counter("checker.collective.sorted_vertices").value == \
            collective.sorted_vertices
        for method, suffix in ((COMPLETE, "complete"), (NO_RESORT, "no_resort"),
                               (INCREMENTAL, "incremental")):
            assert metrics.counter("checker.collective.verdicts."
                                   + suffix).value == collective.count(method)
        window = metrics.histogram("checker.collective.resort_window_size")
        assert window.count == collective.count(INCREMENTAL)
        assert metrics.counter("harness.iterations").value == result.iterations
        assert metrics.counter("sim.executor.iterations").value == \
            result.iterations

    def test_disabled_observability_records_nothing(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=15,
                         addresses=8, seed=4)
        handle = obs.get_obs()
        assert not handle.enabled
        run_and_check(cfg, 50)
        assert handle.metrics.snapshot() == {}
        assert handle.tracer.tree() == []


class TestBugDetectionEndToEnd:
    def test_bug2_detected_through_signature_pipeline(self):
        """The paper's Table 3 flow: instrumented tests on the detailed
        simulator, signatures collected, collective checking flags the
        violating signatures and renders a Figure-13 report."""
        cfg = TestConfig(isa="x86", threads=7, ops_per_thread=200, addresses=32,
                         words_per_line=16, seed=23)
        detected = []
        from repro.sim import GEM5_X86_8CORE

        for i, program in enumerate(generate_suite(cfg, 3)):
            campaign = Campaign(
                program=program, config=cfg, seed=100 + i,
                platform=GEM5_X86_8CORE,
                executor_cls=lambda *a, **kw: DetailedExecutor(
                    *a, faults=FaultConfig(bug=Bug.LOAD_LOAD_LSQ, l1_lines=4), **kw))
            # observed-ws graphs catch the violation exactly as the
            # calibration study does
            campaign_check = campaign.check
            result = campaign.run(128)
            builder = GraphBuilder(program, TSO, ws_mode="observed")
            from repro.checker import BaselineChecker

            graphs = []
            sigs = result.sorted_signatures()
            for sig in sigs:
                e = result.representatives[sig]
                graphs.append(builder.build(e.rf, e.ws))
            report = BaselineChecker().check(graphs)
            for verdict in report.violations:
                detected.append((sigs[verdict.index], verdict))
                text = describe_cycle(program, graphs[verdict.index], verdict.cycle)
                assert "memory consistency violation" in text
        assert detected, "bug 2 must be caught by at least one signature"

    def test_bug3_crashes_counted_by_campaign(self):
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=100, addresses=64,
                         words_per_line=4, seed=29)
        campaign = Campaign(
            config=cfg, seed=5,
            executor_cls=lambda *a, **kw: DetailedExecutor(
                *a, faults=FaultConfig(bug=Bug.WRITEBACK_RACE, l1_lines=4), **kw))
        result = campaign.run(10)
        assert result.crashes == 10
