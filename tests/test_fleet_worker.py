"""Unit tests for the worker task protocol (the device side)."""

import json

import pytest

from repro import io as repro_io
from repro.fleet import WorkerTask, execute_task, run_worker_task
from repro.fleet.worker import task_meta
from repro.harness import Campaign
from repro.testgen import TestConfig, generate

CFG = TestConfig(threads=2, ops_per_thread=10, addresses=8, seed=5)


@pytest.fixture(scope="module")
def program():
    return generate(CFG)


@pytest.fixture
def task(program):
    return WorkerTask(program_doc=repro_io.dump_program(program),
                      blocks=((0, 40), (2, 40)), seed=9, config=CFG)


class TestWorkerTask:
    def test_iterations_property(self, task):
        assert task.iterations == 80

    def test_is_picklable_plain_data(self, task):
        import pickle

        clone = pickle.loads(pickle.dumps(task))
        assert clone == task

    def test_execute_matches_in_process_run_blocks(self, program, task):
        campaign = Campaign(program=program, config=CFG, seed=9)
        direct = campaign.run_blocks([(0, 40), (2, 40)])
        result = execute_task(task)
        assert result.signature_counts == direct.signature_counts
        assert result.iterations == direct.iterations
        assert result.crashes == direct.crashes

    def test_detailed_task_uses_x86_substrate(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=8, addresses=4,
                         seed=3)
        program = generate(cfg)
        task = WorkerTask(program_doc=repro_io.dump_program(program),
                          blocks=((0, 20),), seed=5, config=cfg,
                          detailed=True, l1_lines=2)
        result = execute_task(task)
        assert result.iterations == 20
        assert result.codec.register_width == 64


class TestHandOff:
    def test_run_worker_task_emits_valid_dump(self, program, task):
        payload = run_worker_task(task)
        loaded = repro_io.load_campaign(payload)
        direct = Campaign(program=program, config=CFG,
                          seed=9).run_blocks([(0, 40), (2, 40)])
        assert loaded.signature_counts == direct.signature_counts
        assert loaded.iterations == 80

    def test_dump_carries_shard_provenance(self, task):
        meta = repro_io.campaign_meta(run_worker_task(task))
        assert meta == task_meta(task)
        assert meta["shard"]["seed"] == 9
        assert meta["shard"]["blocks"] == [[0, 40], [2, 40]]

    def test_include_ws_false_strips_coherence_orders(self, task):
        from dataclasses import replace

        payload = run_worker_task(replace(task, include_ws=False))
        doc = json.loads(payload)
        assert all("ws" not in entry for entry in doc["signatures"])
