"""Randomized property tests for candidate analysis and weight tables.

Two invariants the paper's correctness rests on:

* static pruning may only *remove* candidates — every pruned candidate
  set is a subset of the unpruned one, in the same canonical order;
* pruned weight tables still round-trip: any reads-from assignment drawn
  from the pruned candidate sets encodes to signature words that decode
  back to the same assignment.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.instrument import (
    build_weight_tables,
    candidate_sources,
    pruned_candidate_sources,
    regularize,
)
from repro.testgen import TestConfig, generate


@st.composite
def regularized_program(draw):
    config = TestConfig(
        threads=draw(st.integers(min_value=1, max_value=4)),
        ops_per_thread=draw(st.integers(min_value=2, max_value=24)),
        addresses=draw(st.integers(min_value=1, max_value=6)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    epoch = draw(st.integers(min_value=1, max_value=8))
    return regularize(generate(config), epoch)


class TestPruningIsSubset:
    @given(regularized_program())
    @settings(max_examples=60, deadline=None)
    def test_pruned_candidates_subset_of_unpruned(self, program):
        full = candidate_sources(program)
        pruned = pruned_candidate_sources(program)
        assert set(pruned) == set(full)    # same loads analyzed
        for uid, sources in pruned.items():
            assert set(sources) <= set(full[uid])

    @given(regularized_program())
    @settings(max_examples=60, deadline=None)
    def test_pruned_candidates_keep_canonical_order(self, program):
        full = candidate_sources(program)
        pruned = pruned_candidate_sources(program)
        for uid, sources in pruned.items():
            # no duplicates, and the surviving candidates appear in the
            # same relative order as the unpruned canonical list
            assert len(sources) == len(set(sources))
            positions = [full[uid].index(s) for s in sources]
            assert positions == sorted(positions)

    @given(regularized_program())
    @settings(max_examples=60, deadline=None)
    def test_every_load_keeps_at_least_one_candidate(self, program):
        for sources in pruned_candidate_sources(program).values():
            assert sources


class TestPrunedTablesRoundTrip:
    # width 8 is the floor: a 2-bit register cannot represent loads with
    # more than 4 candidates and build_weight_tables rejects them
    @given(regularized_program(),
           st.integers(min_value=0, max_value=2**16),
           st.sampled_from([8, 32, 64]))
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_round_trip(self, program, seed, width):
        pruned = pruned_candidate_sources(program)
        tables = build_weight_tables(program, width, pruned)
        rng = random.Random(seed)
        for _ in range(4):
            rf = {uid: rng.choice(sources)
                  for uid, sources in pruned.items()}
            for table in tables:
                words = table.encode(rf)
                decoded = table.decode(words)
                expected = {uid: rf[uid] for uid in decoded}
                assert decoded == expected

    @given(regularized_program(), st.sampled_from([8, 32, 64]))
    @settings(max_examples=40, deadline=None)
    def test_cardinality_shrinks_or_holds(self, program, width):
        full_tables = build_weight_tables(program, width)
        pruned_tables = build_weight_tables(
            program, width, pruned_candidate_sources(program))
        full = 1
        for t in full_tables:
            full *= t.cardinality
        pruned = 1
        for t in pruned_tables:
            pruned *= t.cardinality
        assert 1 <= pruned <= full
