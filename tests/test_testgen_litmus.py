"""Unit tests for the litmus library (verdicts checked via graphs)."""

import pytest

from repro.graph import GraphBuilder, topological_sort
from repro.mcm import get_model
from repro.testgen import all_litmus_tests
from repro.testgen.litmus import corr, iriw, message_passing, store_buffering


class TestLibraryShape:
    def test_eight_tests(self):
        assert len(all_litmus_tests()) == 8

    def test_every_test_has_verdicts_for_all_models(self):
        for lt in all_litmus_tests():
            assert set(lt.allowed) == {"sc", "tso", "weak"}

    def test_interesting_rf_covers_real_loads(self):
        for lt in all_litmus_tests():
            load_uids = {op.uid for op in lt.program.loads}
            assert set(lt.interesting_rf) <= load_uids

    def test_names_unique(self):
        names = [lt.name for lt in all_litmus_tests()]
        assert len(names) == len(set(names))


def graph_violates(lt, model_name):
    """Check the interesting outcome against a model via its graph.

    Builds the graph with static ws (plus the test's declared ws as
    observed chains when present).
    """
    model = get_model(model_name)
    if lt.interesting_ws is not None:
        ws = dict(lt.interesting_ws)
        for addr in range(lt.program.num_addresses):
            ws.setdefault(addr, [s.uid for s in lt.program.stores_to(addr)])
        builder = GraphBuilder(lt.program, model, ws_mode="observed")
        graph = builder.build(lt.interesting_rf, ws)
    else:
        builder = GraphBuilder(lt.program, model, ws_mode="static")
        graph = builder.build(lt.interesting_rf)
    order = topological_sort(range(lt.program.num_ops), graph.adjacency)
    return order is None


class TestVerdictsMatchGraphs:
    """Forbidden outcomes must yield cyclic graphs; allowed ones acyclic."""

    @pytest.mark.parametrize("model_name", ["sc", "tso", "weak"])
    def test_all_litmus_verdicts(self, model_name):
        for lt in all_litmus_tests():
            violates = graph_violates(lt, model_name)
            allowed = lt.allowed[model_name]
            assert violates == (not allowed), (lt.name, model_name)


class TestSpecificShapes:
    def test_sb_probes_init_reads(self):
        lt = store_buffering()
        from repro.isa import INIT

        assert all(v == INIT for v in lt.interesting_rf.values())

    def test_mp_flag_then_stale_data(self):
        lt = message_passing()
        assert lt.program.num_threads == 2
        assert len(lt.interesting_rf) == 2

    def test_iriw_has_four_threads(self):
        assert iriw().program.num_threads == 4

    def test_corr_single_address(self):
        assert corr().program.num_addresses == 1
