"""Property tests: metrics state export/absorb is an exact round trip.

Satellite of repro.obs v2: fleet workers ship ``export_state()`` home
and the host folds it in with ``absorb_state()``.  For the merge to be
trustworthy, sharding a sample stream across registries and merging
must be indistinguishable from observing it serially — exactly, for
every histogram statistic except the floating-point ``sum`` (addition
order differs across shards, so the sum agrees only to rounding).
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry

# samples exercise zero/negative underflow, sub-1.0, and large values
SAMPLES = st.floats(min_value=-10.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False, width=32)
QUANTILES = (0.0, 0.25, 0.5, 0.95, 0.99, 1.0)


def observe_all(histogram, values):
    for value in values:
        histogram.observe(value)


def assert_histograms_identical(merged, serial):
    assert merged.count == serial.count
    assert merged._underflow == serial._underflow
    assert merged._buckets == serial._buckets
    if serial.count:
        assert merged.min == serial.min
        assert merged.max == serial.max
    assert math.isclose(merged.total, serial.total,
                        rel_tol=1e-9, abs_tol=1e-9)
    # quantiles read only (count, underflow, buckets, min, max) — all
    # merged exactly — so they are EXACTLY equal, not approximately
    for q in QUANTILES:
        assert merged.quantile(q) == serial.quantile(q)


class TestHistogramStateRoundTrip:
    @given(values=st.lists(SAMPLES, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_export_absorb_into_empty_is_exact(self, values):
        source = Histogram()
        observe_all(source, values)
        sink = Histogram()
        sink.absorb_state(source.state())
        assert_histograms_identical(sink, source)

    @given(values=st.lists(SAMPLES, max_size=200),
           cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_sharded_equals_serial(self, values, cut):
        cut = min(cut, len(values))
        serial = Histogram()
        observe_all(serial, values)

        left, right = Histogram(), Histogram()
        observe_all(left, values[:cut])
        observe_all(right, values[cut:])
        merged = Histogram()
        merged.absorb_state(left.state())
        merged.absorb_state(right.state())
        assert_histograms_identical(merged, serial)

    @given(values=st.lists(SAMPLES, max_size=60),
           shards=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_many_shard_merge_order_is_irrelevant(self, values, shards):
        serial = Histogram()
        observe_all(serial, values)
        parts = [Histogram() for _ in range(shards)]
        for index, value in enumerate(values):
            parts[index % shards].observe(value)
        forward, backward = Histogram(), Histogram()
        states = [p.state() for p in parts]
        for state in states:
            forward.absorb_state(state)
        for state in reversed(states):
            backward.absorb_state(state)
        assert_histograms_identical(forward, serial)
        assert_histograms_identical(backward, serial)

    def test_empty_source_is_a_noop(self):
        sink = Histogram()
        sink.observe(3.0)
        before = sink.state()
        sink.absorb_state(Histogram().state())
        assert sink.state() == before

    def test_single_sample_edge(self):
        source = Histogram()
        source.observe(0.125)
        sink = Histogram()
        sink.absorb_state(source.state())
        assert sink.count == 1
        assert sink.min == sink.max == 0.125
        assert sink.quantile(0.5) == source.quantile(0.5)

    def test_state_survives_json_serialization(self):
        # the fleet pipe pickles, but --metrics-out round-trips JSON:
        # bucket keys become strings and must still merge exactly
        source = Histogram()
        observe_all(source, [0.5, 2.0, 2.0, 100.0, -1.0])
        wire = json.loads(json.dumps(source.state()))
        sink = Histogram()
        sink.absorb_state(wire)
        assert_histograms_identical(sink, source)


class TestRegistryStateRoundTrip:
    @given(values=st.lists(SAMPLES, max_size=100),
           counts=st.lists(st.integers(min_value=0, max_value=50),
                           max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_registry_merge_matches_serial(self, values, counts):
        serial = MetricsRegistry()
        left, right = MetricsRegistry(), MetricsRegistry()
        for index, value in enumerate(values):
            shard = left if index % 2 == 0 else right
            serial.histogram("h").observe(value)
            shard.histogram("h").observe(value)
        for index, n in enumerate(counts):
            shard = left if index % 2 == 0 else right
            serial.counter("c").inc(n)
            shard.counter("c").inc(n)

        merged = MetricsRegistry()
        merged.absorb_state(left.export_state())
        merged.absorb_state(right.export_state())
        if values:
            assert_histograms_identical(merged.get("h"), serial.get("h"))
        if counts:
            assert merged.get("c").value == serial.get("c").value

    def test_absorb_creates_missing_metrics_with_exporter_kind(self):
        source = MetricsRegistry()
        source.counter("a").inc(2)
        source.gauge("b").set(7.5)
        source.histogram("c").observe(1.0)
        sink = MetricsRegistry()
        sink.absorb_state(source.export_state())
        assert sink.get("a").value == 2
        assert sink.get("b").value == 7.5
        assert sink.get("c").count == 1
