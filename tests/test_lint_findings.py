"""Findings, severities, reports and the rule registry."""

import pytest

from repro.lint import LintReport, Severity, all_rules, get_rule
from repro.lint.findings import Finding
from repro.lint.rules import finding, rules_markdown, rules_table


class TestSeverity:
    def test_ordering_follows_escalation(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_parse_round_trips_every_level(self):
        for severity in Severity:
            assert Severity.parse(str(severity)) is severity
            assert Severity.parse(severity.name) is severity

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestFinding:
    def test_location_variants(self):
        assert finding("MTC001", "m", thread=1, uid=12).location == "t1.op12"
        assert finding("MTC001", "m", thread=1).location == "t1"
        assert finding("MTC001", "m").location == "program"

    def test_severity_defaults_to_rule_registration(self):
        assert finding("MTC002", "m").severity is Severity.ERROR
        assert finding("MTC001", "m").severity is Severity.WARNING
        override = finding("MTC001", "m", severity=Severity.ERROR)
        assert override.severity is Severity.ERROR

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="MTC999"):
            finding("MTC999", "m")

    def test_to_json_carries_location(self):
        doc = finding("MTC003", "dup", thread=0, uid=4).to_json()
        assert doc == {"rule": "MTC003", "severity": "error",
                       "message": "dup", "location": "t0.op4",
                       "thread": 0, "uid": 4}


class TestLintReport:
    def _report(self):
        report = LintReport("p")
        report.add(finding("MTC001", "dead"))
        report.add(finding("MTC002", "empty", uid=3))
        report.add(finding("MTC013", "single"))
        return report

    def test_severity_arithmetic(self):
        report = self._report()
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.at_least(Severity.INFO)) == 3
        assert report.worst is Severity.ERROR

    def test_empty_report_is_clean(self):
        report = LintReport("p")
        assert report.worst is None
        assert not report.errors
        assert not report.zero_entropy

    def test_zero_entropy_tracks_cardinality(self):
        report = LintReport("p")
        report.cardinality = 1
        assert report.zero_entropy
        report.cardinality = 2
        assert not report.zero_entropy

    def test_by_rule_counts(self):
        report = self._report()
        report.add(finding("MTC001", "again"))
        assert report.by_rule() == {"MTC001": 2, "MTC002": 1, "MTC013": 1}
        assert report.count("MTC001") == 2

    def test_render_sorts_errors_first(self):
        lines = self._report().render().splitlines()
        assert "MTC002" in lines[1]

    def test_to_json_counts(self):
        doc = self._report().to_json()
        assert doc["counts"] == {"error": 1, "warning": 1, "info": 1}
        assert len(doc["findings"]) == 3


class TestRegistry:
    def test_ids_are_unique_and_sorted(self):
        ids = [r.id for r in all_rules()]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)

    def test_families_cover_all_analyzers(self):
        families = {r.family for r in all_rules()}
        assert {"program", "layout", "signature", "verifier",
                "graph"} <= families

    def test_get_rule(self):
        rule = get_rule("MTC011")
        assert rule.severity is Severity.ERROR
        assert rule.family == "signature"

    def test_renderings_mention_every_rule(self):
        table = rules_table()
        markdown = rules_markdown()
        for rule in all_rules():
            assert rule.id in table
            assert rule.id in markdown
