"""Behavioural tests of the operational executor's fault points.

Each armed point must produce the specific misbehaviour it names, and —
just as important — an executor whose plane never arms a consulted
point must stay byte-identical to the unmutated machine (the no-fault
transparency guarantee the sensitivity suite's control arm rests on).
"""

import pytest

from repro.errors import SignatureError
from repro.instrument import SignatureCodec
from repro.isa import TestProgram, load, store
from repro.isa.layout import MemoryLayout
from repro.isa.instructions import INIT
from repro.mcm import SC, TSO, WEAK
from repro.mutate import FaultPlane, Mutation, Trigger, get_mutation
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig
from repro.testgen.litmus import message_passing_fenced, store_buffering_fenced


def plane_for(points, trigger=None, seed=0, name="executor-test"):
    mutation = Mutation(name=name, title="test fixture", provenance="tests",
                        executor="operational", points=tuple(points),
                        trigger=trigger or Trigger.always())
    return FaultPlane(mutation, seed)


def outcome_seen(litmus, model, iterations, plane=None, seed=1):
    ex = OperationalExecutor(litmus.program, model, seed=seed, plane=plane)
    for execution in ex.run(iterations):
        if all(execution.rf.get(k) == v
               for k, v in litmus.interesting_rf.items()):
            return True
    return False


class TestStaleRead:
    def test_load_returns_previous_write(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), store(0, 1, 0, 2), load(0, 2, 0)]],
            num_addresses=1)
        st1 = program.threads[0].ops[0].uid
        st2 = program.threads[0].ops[1].uid
        ld = program.threads[0].ops[2].uid
        clean = OperationalExecutor(program, SC, seed=0)
        assert all(e.rf[ld] == st2 for e in clean.run(8))
        faulted = OperationalExecutor(program, SC, seed=0,
                                      plane=plane_for(["mem.stale_read"]))
        assert all(e.rf[ld] == st1 for e in faulted.run(8))

    def test_single_write_chain_reads_init(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)]], num_addresses=1)
        ld = program.threads[0].ops[1].uid
        faulted = OperationalExecutor(program, SC, seed=0,
                                      plane=plane_for(["mem.stale_read"]))
        assert all(e.rf[ld] == INIT for e in faulted.run(8))


class TestFenceDrop:
    def test_tso_fence_drop_reenables_store_buffering(self):
        lt = store_buffering_fenced()
        assert not outcome_seen(lt, TSO, 600)
        assert outcome_seen(lt, TSO, 600, plane=plane_for(["fence.drop"]))

    def test_weak_fence_drop_reorders_across_barriers(self):
        lt = message_passing_fenced()
        assert not outcome_seen(lt, WEAK, 400)
        assert outcome_seen(lt, WEAK, 400, plane=plane_for(["fence.drop"]))


class TestStoreBufferReorder:
    def test_non_fifo_drain_inverts_write_serialization(self):
        # two buffered stores to one address: a non-FIFO drain commits
        # the younger first, inverting the observed coherence order —
        # the store->store reordering x86-TSO forbids
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), store(0, 1, 0, 2)], [load(1, 0, 0)]],
            num_addresses=1)
        st1 = program.threads[0].ops[0].uid
        st2 = program.threads[0].ops[1].uid
        clean = OperationalExecutor(program, TSO, seed=0)
        assert all(tuple(e.ws[0]) == (st1, st2) for e in clean.run(200))
        plane = plane_for(["tso.sb_reorder"])
        faulted = OperationalExecutor(program, TSO, seed=0, plane=plane)
        orders = {tuple(e.ws[0]) for e in faulted.run(200)}
        assert (st2, st1) in orders
        assert plane.total_fired() > 0


class TestAliasForward:
    def test_same_line_forward_fires_signature_assert(self):
        # one line holds words 0 and 1: the load of word 0 misses the
        # store buffer exactly, but the buffered store to word 1 matches
        # the line tag and gets (wrongly) forwarded
        program = TestProgram.from_ops(
            [[store(0, 0, 1, 1), load(0, 1, 0)]], num_addresses=2)
        st = program.threads[0].ops[0].uid
        ld = program.threads[0].ops[1].uid
        layout = MemoryLayout(num_words=2, words_per_line=2)
        faulted = OperationalExecutor(
            program, TSO, seed=0, layout=layout,
            plane=plane_for(["tso.sb_forward_alias"]))
        hits = [e for e in faulted.run(16) if e.rf[ld] == st]
        assert hits, "alias forward never produced the wrong-value read"
        codec = SignatureCodec(program, 32)
        with pytest.raises(SignatureError):
            codec.encode(hits[0].rf)
        assert faulted.run_one().counters is not None

    def test_needs_multiword_lines_for_opportunities(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 1, 1), load(0, 1, 0)]], num_addresses=2)
        plane = plane_for(["tso.sb_forward_alias"])
        ex = OperationalExecutor(program, TSO, seed=0,
                                 layout=MemoryLayout(num_words=2),
                                 plane=plane)
        for _ in ex.run(8):
            pass
        assert plane.total_fired() == 0


class TestWindowEscape:
    def test_same_address_blocking_is_lifted(self):
        # CoRW: even the weak model must order a load after the older
        # same-address store; the escape lets it read the initial value
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)]], num_addresses=1)
        ld = program.threads[0].ops[1].uid
        clean = OperationalExecutor(program, WEAK, seed=0)
        assert all(e.rf[ld] != INIT for e in clean.run(64))
        faulted = OperationalExecutor(
            program, WEAK, seed=0, plane=plane_for(["weak.window_escape"]))
        assert any(e.rf[ld] == INIT for e in faulted.run(64))


class TestNoFaultTransparency:
    """A plane whose points the engine never arms must change nothing."""

    @pytest.mark.parametrize("isa,model,foreign", [
        ("x86", TSO, "weak-window-escape"),
        ("arm", WEAK, "tso-sb-reorder"),
    ])
    def test_unconsulted_plane_is_byte_identical(self, isa, model, foreign):
        cfg = TestConfig(isa=isa, threads=3, ops_per_thread=20, addresses=4,
                         seed=5)
        from repro.testgen import generate

        program = generate(cfg)
        plane = FaultPlane(get_mutation(foreign), seed=9)
        clean = OperationalExecutor(program, model, seed=9, layout=cfg.layout)
        armed = OperationalExecutor(program, model, seed=9, layout=cfg.layout,
                                    plane=plane)
        clean_rf = [e.rf for e in clean.run(40)]
        armed_rf = [e.rf for e in armed.run(40)]
        assert clean_rf == armed_rf
        assert plane.total_fired() == 0

    def test_campaign_without_mutation_matches_default(self, tmp_path):
        from repro import io as repro_io
        from repro.harness import Campaign

        cfg = TestConfig(isa="arm", threads=3, ops_per_thread=20, addresses=4,
                         seed=6)
        a = Campaign(config=cfg, seed=2).run(60)
        b = Campaign(config=cfg, seed=2, mutation=None).run(60)
        pa, pb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        repro_io.save_campaign(a, pa)
        repro_io.save_campaign(b, pb)
        assert open(pa, "rb").read() == open(pb, "rb").read()
