"""Unit + property tests for MTraceCheck's collective checker."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.checker import (
    COMPLETE,
    INCREMENTAL,
    NO_RESORT,
    BaselineChecker,
    CollectiveChecker,
)
from repro.graph import PO, ConstraintGraph, Edge, GraphBuilder
from repro.instrument import SignatureCodec
from repro.sim import OperationalExecutor, platform_for_isa
from repro.testgen import TestConfig, generate


def graph(n, pairs):
    return ConstraintGraph(n, [Edge(u, v, PO) for u, v in pairs])


class TestSmallSequences:
    def test_first_graph_checked_completely(self):
        report = CollectiveChecker().check([graph(3, [(0, 1)])])
        assert report.verdicts[0].method == COMPLETE

    def test_identical_graph_needs_no_resort(self):
        g1 = graph(3, [(0, 1), (1, 2)])
        g2 = graph(3, [(0, 1), (1, 2)])
        report = CollectiveChecker().check([g1, g2])
        assert report.verdicts[1].method == NO_RESORT

    def test_forward_only_addition_needs_no_resort(self):
        g1 = graph(4, [(0, 1), (1, 2)])
        g2 = graph(4, [(0, 1), (1, 2), (0, 3)])
        report = CollectiveChecker().check([g1, g2])
        assert report.verdicts[1].method == NO_RESORT

    def test_removed_edges_need_no_resort(self):
        g1 = graph(3, [(0, 1), (1, 2)])
        g2 = graph(3, [(0, 1)])
        report = CollectiveChecker().check([g1, g2])
        assert report.verdicts[1].method == NO_RESORT

    def test_backward_edge_triggers_windowed_resort(self):
        g1 = graph(4, [(0, 1), (1, 2), (2, 3)])
        # reverse an ordering: now 2 must precede 1
        g2 = graph(4, [(0, 1), (2, 1), (2, 3)])
        report = CollectiveChecker().check([g1, g2])
        verdict = report.verdicts[1]
        assert verdict.method == INCREMENTAL
        assert not verdict.violation
        assert 0 < verdict.resorted_vertices <= 4

    def test_cycle_in_window_is_violation(self):
        g1 = graph(4, [(0, 1), (1, 2)])
        g2 = graph(4, [(0, 1), (1, 2), (2, 1)])
        report = CollectiveChecker().check([g1, g2])
        assert report.verdicts[1].violation
        assert report.verdicts[1].cycle is not None

    def test_violating_graph_does_not_become_base(self):
        g1 = graph(4, [(0, 1), (1, 2)])
        bad = graph(4, [(0, 1), (1, 2), (2, 1)])
        g3 = graph(4, [(0, 1), (1, 2)])
        report = CollectiveChecker().check([g1, bad, g3])
        assert [v.violation for v in report.verdicts] == [False, True, False]
        assert report.verdicts[2].method == NO_RESORT

    def test_first_graph_cyclic_then_valid(self):
        bad = graph(3, [(0, 1), (1, 0)])
        good = graph(3, [(0, 1)])
        report = CollectiveChecker().check([bad, good])
        assert report.verdicts[0].violation
        assert report.verdicts[0].method == COMPLETE
        assert report.verdicts[1].method == COMPLETE   # no valid base yet
        assert not report.verdicts[1].violation

    def test_count_and_fraction_stats(self):
        g1 = graph(4, [(0, 1), (1, 2), (2, 3)])
        g2 = graph(4, [(0, 1), (2, 1), (2, 3)])
        g3 = graph(4, [(0, 1), (2, 1), (2, 3)])
        report = CollectiveChecker().check([g1, g2, g3])
        assert report.count(COMPLETE) == 1
        assert report.count(INCREMENTAL) == 1
        assert report.count(NO_RESORT) == 1
        assert 0 < report.affected_vertex_fraction <= 1


def _random_graph_sequence(rng, n_vertices, n_graphs):
    """Signature-sorted-like sequence: neighbouring graphs differ a little."""
    base = set()
    for _ in range(n_vertices):
        u, v = rng.randrange(n_vertices), rng.randrange(n_vertices)
        if u != v:
            base.add((u, v))
    graphs = []
    for _ in range(n_graphs):
        mutation = set(base)
        for _ in range(rng.randrange(0, 4)):
            u, v = rng.randrange(n_vertices), rng.randrange(n_vertices)
            if u != v:
                if (u, v) in mutation:
                    mutation.discard((u, v))
                else:
                    mutation.add((u, v))
        graphs.append(graph(n_vertices, mutation))
        base = mutation
    return graphs


class TestEquivalenceWithBaseline:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_same_verdicts_on_random_sequences(self, seed):
        """Collective checking is exactly as precise as per-graph sorting."""
        rng = random.Random(seed)
        graphs = _random_graph_sequence(rng, rng.randrange(3, 14), rng.randrange(1, 12))
        collective = CollectiveChecker().check(graphs)
        baseline = BaselineChecker().check(graphs)
        assert [v.violation for v in collective.verdicts] == \
               [v.violation for v in baseline.verdicts]

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_with_initial_key(self, seed):
        rng = random.Random(seed)
        graphs = _random_graph_sequence(rng, rng.randrange(3, 10), rng.randrange(1, 8))
        collective = CollectiveChecker(initial_key=lambda v: -v).check(graphs)
        baseline = BaselineChecker().check(graphs)
        assert [v.violation for v in collective.verdicts] == \
               [v.violation for v in baseline.verdicts]


class TestOnRealCampaignGraphs:
    @pytest.mark.parametrize("isa", ["arm", "x86"])
    def test_matches_baseline_and_saves_work(self, isa):
        cfg = TestConfig(isa=isa, threads=2, ops_per_thread=40, addresses=16, seed=3)
        p = generate(cfg)
        platform = platform_for_isa(isa)
        model = platform.memory_model
        codec = SignatureCodec(p, platform.register_width)
        ex = OperationalExecutor(p, model, platform, seed=8, layout=cfg.layout)
        reps = {}
        for e in ex.run(400):
            sig = codec.encode(e.rf)
            reps.setdefault(sig, e)
        builder = GraphBuilder(p, model, ws_mode="static")
        graphs = [builder.build(codec.decode(sig)) for sig in sorted(reps)]
        collective = CollectiveChecker().check(graphs)
        baseline = BaselineChecker().check(graphs)
        assert [v.violation for v in collective.verdicts] == \
               [v.violation for v in baseline.verdicts]
        assert not collective.violations
        if len(graphs) > 5:
            assert collective.sorted_vertices < baseline.sorted_vertices
