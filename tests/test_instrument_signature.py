"""Unit tests for execution signatures and the codec."""

import pytest

from repro.errors import SignatureError
from repro.instrument import Signature, SignatureCodec
from repro.testgen import TestConfig, generate


def full_rf(codec, pick=0):
    """A valid rf choosing candidate ``pick`` (clamped) for every load."""
    return {uid: cands[min(pick, len(cands) - 1)]
            for uid, cands in codec.candidates.items()}


class TestSignatureType:
    def test_ordering_is_thread0_most_significant(self):
        a = Signature(((1, 0), (9,)))
        b = Signature(((2, 0), (0,)))
        assert a < b

    def test_ordering_within_thread_first_word_most_significant(self):
        a = Signature(((0, 5),))
        b = Signature(((1, 0),))
        assert a < b

    def test_flat_concatenation(self):
        sig = Signature(((1, 2), (3,)))
        assert sig.flat == (1, 2, 3)

    def test_interleaved_key(self):
        sig = Signature(((1, 2), (3,)))
        assert sig.interleaved_key() == (1, 3, 2)

    def test_str_renders_hex(self):
        assert str(Signature(((16,), (2,)))) == "0x10|0x2"

    def test_hashable_and_equal(self):
        assert Signature(((1,),)) == Signature(((1,),))
        assert len({Signature(((1,),)), Signature(((1,),))}) == 1


class TestCodec:
    def test_encode_produces_per_thread_sections(self, small_program, small_codec):
        sig = small_codec.encode(full_rf(small_codec))
        assert len(sig.words) == small_program.num_threads

    def test_roundtrip_different_picks(self, small_codec):
        for pick in range(3):
            rf = full_rf(small_codec, pick)
            assert small_codec.decode(small_codec.encode(rf)) == rf

    def test_decode_rejects_wrong_thread_count(self, small_codec):
        with pytest.raises(SignatureError):
            small_codec.decode(Signature(((0,),)))

    def test_byte_size_consistent_with_tables(self, small_codec):
        assert small_codec.byte_size == sum(t.byte_size for t in small_codec.tables)

    def test_total_words(self, small_codec):
        assert small_codec.total_words == sum(t.num_words for t in small_codec.tables)

    def test_cardinality_is_product_of_candidates(self, small_codec):
        expected = 1
        for cands in small_codec.candidates.values():
            expected *= len(cands)
        assert small_codec.cardinality == expected

    def test_paper_size_magnitude_arm_2_50_32(self):
        """ARM-2-50-32 signatures average ~8.4 bytes in the paper; the
        static size for a single test must be in that neighbourhood."""
        sizes = []
        for seed in range(10):
            p = generate(TestConfig(isa="arm", threads=2, ops_per_thread=50,
                                    addresses=32, seed=seed))
            sizes.append(SignatureCodec(p, 32).byte_size)
        mean = sum(sizes) / len(sizes)
        assert 8 <= mean <= 16

    def test_wider_registers_never_increase_size(self):
        p = generate(TestConfig(threads=4, ops_per_thread=50, addresses=16, seed=1))
        assert SignatureCodec(p, 64).byte_size <= SignatureCodec(p, 32).byte_size * 2
