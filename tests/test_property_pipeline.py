"""Property-based tests over the whole pipeline.

These are the repository's core invariants:

1. every execution of a compliant machine encodes to a signature that
   decodes back to the same reads-from map (signature exactness),
2. such executions never produce cyclic constraint graphs (no false
   positives), in both ws modes,
3. the collective checker agrees with the baseline on every verdict.
"""

from hypothesis import given, settings, strategies as st

from repro.checker import BaselineChecker, CollectiveChecker
from repro.graph import GraphBuilder, topological_sort
from repro.instrument import SignatureCodec
from repro.mcm import SC, TSO, WEAK
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate

_MODELS = {"sc": SC, "tso": TSO, "weak": WEAK}


@st.composite
def pipeline_case(draw):
    cfg = TestConfig(
        threads=draw(st.integers(1, 4)),
        ops_per_thread=draw(st.integers(2, 25)),
        addresses=draw(st.integers(1, 8)),
        words_per_line=draw(st.sampled_from([1, 4])),
        barrier_fraction=draw(st.sampled_from([0.0, 0.1])),
        seed=draw(st.integers(0, 100_000)),
    )
    model = _MODELS[draw(st.sampled_from(sorted(_MODELS)))]
    width = draw(st.sampled_from([16, 32, 64]))
    seed = draw(st.integers(0, 1000))
    return cfg, model, width, seed


@given(pipeline_case())
@settings(max_examples=40, deadline=None)
def test_signature_roundtrip_on_real_executions(case):
    cfg, model, width, seed = case
    program = generate(cfg)
    codec = SignatureCodec(program, width)
    ex = OperationalExecutor(program, model, seed=seed, layout=cfg.layout)
    for execution in ex.run(8):
        signature = codec.encode(execution.rf)
        assert codec.decode(signature) == execution.rf


@given(pipeline_case())
@settings(max_examples=30, deadline=None)
def test_no_false_positives_either_ws_mode(case):
    cfg, model, width, seed = case
    program = generate(cfg)
    static = GraphBuilder(program, model, ws_mode="static")
    observed = GraphBuilder(program, model, ws_mode="observed")
    ex = OperationalExecutor(program, model, seed=seed, layout=cfg.layout)
    vertices = range(program.num_ops)
    for execution in ex.run(6):
        assert topological_sort(
            vertices, static.build(execution.rf).adjacency) is not None
        assert topological_sort(
            vertices, observed.build(execution.rf, execution.ws).adjacency) is not None


@given(pipeline_case())
@settings(max_examples=25, deadline=None)
def test_collective_equals_baseline_on_campaigns(case):
    cfg, model, width, seed = case
    program = generate(cfg)
    codec = SignatureCodec(program, width)
    builder = GraphBuilder(program, model, ws_mode="static")
    ex = OperationalExecutor(program, model, seed=seed, layout=cfg.layout)
    reps = {}
    for execution in ex.run(30):
        reps.setdefault(codec.encode(execution.rf), execution)
    graphs = [builder.build(codec.decode(sig)) for sig in sorted(reps)]
    collective = CollectiveChecker().check(graphs)
    baseline = BaselineChecker().check(graphs)
    assert [v.violation for v in collective.verdicts] == \
           [v.violation for v in baseline.verdicts]
    assert not collective.violations
