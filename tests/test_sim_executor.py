"""Unit tests for the fast operational executor."""

import pytest

from repro.errors import ExecutionError
from repro.instrument import SignatureCodec
from repro.isa import INIT, TestProgram, barrier, load, store
from repro.mcm import SC, TSO, WEAK
from repro.sim import ARM_BIG_LITTLE, OperationalExecutor, X86_DESKTOP
from repro.testgen import TestConfig, generate
from repro.testgen.litmus import all_litmus_tests


#: reorder-happy machine settings used to stress the litmus tests — rare
#: relaxed outcomes (IRIW, 2+2W) need far fewer iterations to surface,
#: and forbidden outcomes must stay impossible under ANY tuning.
_STRESS = __import__("repro.sim.executor", fromlist=["Tuning"]).Tuning(
    in_order_bias=0.55, fetch_prob=0.75, start_skew=2.0)


class TestLitmusCompliance:
    """The executor must produce exactly the allowed outcomes per model."""

    @pytest.mark.parametrize("model", [SC, TSO, WEAK], ids=lambda m: m.name)
    def test_forbidden_outcomes_never_appear(self, model):
        for lt in all_litmus_tests():
            if lt.allowed[model.name]:
                continue
            ex = OperationalExecutor(lt.program, model, seed=3, tuning=_STRESS)
            for e in ex.run(800):
                hit = all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
                if hit and lt.interesting_ws is not None:
                    hit = all(e.ws.get(a) == c for a, c in lt.interesting_ws.items())
                assert not hit, (lt.name, model.name)

    @pytest.mark.parametrize("model", [TSO, WEAK], ids=lambda m: m.name)
    def test_allowed_relaxed_outcomes_do_appear(self, model):
        for lt in all_litmus_tests():
            if not lt.allowed[model.name] or lt.allowed["sc"]:
                continue
            ex = OperationalExecutor(lt.program, model, seed=3, tuning=_STRESS)
            seen = False
            for e in ex.run(6000):
                hit = all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
                if hit and lt.interesting_ws is not None:
                    hit = all(e.ws.get(a) == c for a, c in lt.interesting_ws.items())
                if hit:
                    seen = True
                    break
            assert seen, (lt.name, model.name)


class TestExecutionShape:
    def test_rf_covers_all_loads(self, small_program):
        ex = OperationalExecutor(small_program, WEAK, seed=1)
        e = ex.run_one()
        assert set(e.rf) == {op.uid for op in small_program.loads}

    def test_ws_covers_all_stores(self, small_program):
        ex = OperationalExecutor(small_program, TSO, seed=1)
        e = ex.run_one()
        for addr in range(small_program.num_addresses):
            assert sorted(e.ws[addr]) == sorted(
                s.uid for s in small_program.stores_to(addr))

    def test_same_thread_ws_in_program_order(self, small_program):
        """Per-location same-thread stores serialize in program order
        under every model (coherence)."""
        for model in (SC, TSO, WEAK):
            ex = OperationalExecutor(small_program, model, seed=5)
            for e in ex.run(50):
                for chain in e.ws.values():
                    per_thread = {}
                    for uid in chain:
                        t = small_program.op(uid).thread
                        assert per_thread.get(t, -1) < uid
                        per_thread[t] = uid

    def test_rf_sources_are_valid_candidates(self, small_program, small_codec):
        for model in (SC, TSO, WEAK):
            ex = OperationalExecutor(small_program, model, seed=6)
            for e in ex.run(50):
                for uid, src in e.rf.items():
                    assert src in small_codec.candidates[uid]

    def test_deterministic_given_seed(self, small_program):
        a = OperationalExecutor(small_program, WEAK, seed=11)
        b = OperationalExecutor(small_program, WEAK, seed=11)
        for ea, eb in zip(a.run(20), b.run(20)):
            assert ea.rf == eb.rf and ea.ws == eb.ws

    def test_counters_populated(self, small_program):
        ex = OperationalExecutor(small_program, TSO, seed=1)
        e = ex.run_one()
        assert e.counters.test_accesses == len(small_program.loads) + \
            len(small_program.stores)
        assert e.counters.base_cycles > 0

    def test_rf_key_identity(self, small_program):
        ex = OperationalExecutor(small_program, SC, seed=2)
        e1, e2 = ex.run_one(), ex.run_one()
        assert (e1.rf == e2.rf) == (e1.rf_key() == e2.rf_key())


class TestInstrumentationModes:
    def test_signature_mode_requires_codec(self, small_program):
        with pytest.raises(ExecutionError):
            OperationalExecutor(small_program, WEAK, instrumentation="signature")

    def test_unknown_mode_rejected(self, small_program):
        with pytest.raises(ExecutionError):
            OperationalExecutor(small_program, WEAK, instrumentation="tracing")

    def test_signature_mode_accounts_cycles_and_stores(self, small_program, small_codec):
        ex = OperationalExecutor(small_program, WEAK, seed=2,
                                 instrumentation="signature", codec=small_codec)
        e = ex.run_one()
        assert e.counters.extra_accesses == small_codec.total_words
        assert e.counters.instrumentation_cycles > 0

    def test_flush_mode_logs_every_load(self, small_program):
        ex = OperationalExecutor(small_program, WEAK, seed=2, instrumentation="flush")
        e = ex.run_one()
        assert e.counters.extra_accesses == len(small_program.loads)

    def test_signature_cheaper_than_flush(self, small_program, small_codec):
        sig = OperationalExecutor(small_program, WEAK, seed=2,
                                  instrumentation="signature", codec=small_codec)
        flush = OperationalExecutor(small_program, WEAK, seed=2,
                                    instrumentation="flush")
        sig_extra = sum(e.counters.extra_accesses for e in sig.run(20))
        flush_extra = sum(e.counters.extra_accesses for e in flush.run(20))
        assert sig_extra < flush_extra

    def test_branch_predictor_warms_up(self):
        """Low-diversity tests mispredict rarely after the first runs
        (paper: signature computation nearly free for ARM-2-50-64)."""
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=30, addresses=16, seed=9)
        p = generate(cfg)
        codec = SignatureCodec(p, 32)
        ex = OperationalExecutor(p, WEAK, seed=2, instrumentation="signature",
                                 codec=codec)
        runs = list(ex.run(50))
        early = sum(e.counters.branch_mispredicts for e in runs[:5])
        late = sum(e.counters.branch_mispredicts for e in runs[-5:])
        assert late <= early


class TestBarriers:
    def test_tso_barrier_drains_store_buffer(self):
        p = TestProgram.from_ops(
            [
                [store(0, 0, 0, 1), barrier(0, 1), load(0, 2, 1)],
                [store(1, 0, 1, 2), barrier(1, 1), load(1, 2, 0)],
            ],
            num_addresses=2)
        ex = OperationalExecutor(p, TSO, seed=1)
        for e in ex.run(500):
            ld0 = p.threads[0].ops[2].uid
            ld1 = p.threads[1].ops[2].uid
            assert not (e.rf[ld0] == INIT and e.rf[ld1] == INIT)

    def test_sync_barriers_rendezvous(self):
        """With rendezvous barriers, epoch-1 loads always see epoch-0 stores."""
        p = TestProgram.from_ops(
            [
                [store(0, 0, 0, 1), barrier(0, 1), load(0, 2, 1)],
                [store(1, 0, 1, 2), barrier(1, 1), load(1, 2, 0)],
            ],
            num_addresses=2)
        for model in (SC, TSO, WEAK):
            ex = OperationalExecutor(p, model, seed=1, sync_barriers=True)
            for e in ex.run(200):
                assert e.rf[p.threads[0].ops[2].uid] == p.threads[1].ops[0].uid
                assert e.rf[p.threads[1].ops[2].uid] == p.threads[0].ops[0].uid


class TestPlatforms:
    def test_platform_model_default(self, small_program):
        ex = OperationalExecutor(small_program, platform=X86_DESKTOP, seed=1)
        assert ex.model.name == "tso"
        ex = OperationalExecutor(small_program, platform=ARM_BIG_LITTLE, seed=1)
        assert ex.model.name == "weak"

    def test_unsupported_model_rejected(self, small_program):
        class Fake:
            name = "power"

        with pytest.raises(ExecutionError):
            OperationalExecutor(small_program, Fake())

    def test_uniform_random_mode(self, small_program):
        ex = OperationalExecutor(small_program, SC, seed=1, uniform_random=True)
        e = ex.run_one()
        assert set(e.rf) == {op.uid for op in small_program.loads}
