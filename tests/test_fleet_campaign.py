"""Integration tests: sharded campaigns vs serial ground truth."""

import pytest

from repro import obs
from repro.errors import ReproError
from repro.fleet import FleetConfig, run_campaign_fleet
from repro.harness import Campaign, SuiteRunner, check_campaign_result
from repro.testgen import TestConfig

CFG = TestConfig(threads=2, ops_per_thread=10, addresses=8, seed=7)


class TestShardedDeterminism:
    """Acceptance: jobs > 1 must reproduce the serial run bit-for-bit."""

    def test_four_workers_match_serial(self):
        serial = Campaign(config=CFG, seed=11).run(240, block=40)
        merged = run_campaign_fleet(config=CFG, iterations=240, jobs=4,
                                    seed=11, block=40)
        assert merged.signature_counts == serial.signature_counts
        assert merged.iterations == serial.iterations
        assert merged.crashes == serial.crashes

    def test_checker_verdicts_identical(self):
        serial = Campaign(config=CFG, seed=11).run(240, block=40)
        merged = run_campaign_fleet(config=CFG, iterations=240, jobs=4,
                                    seed=11, block=40)
        ours = check_campaign_result(merged)
        theirs = check_campaign_result(serial)
        assert ours.collective.summary() == theirs.collective.summary()
        assert ours.baseline.summary() == theirs.baseline.summary()
        assert ours.signatures == theirs.signatures

    def test_campaign_jobs_knob_routes_to_fleet(self):
        serial = Campaign(config=CFG, seed=11).run(200, block=50)
        sharded = Campaign(config=CFG, seed=11).run(200, jobs=2, block=50)
        assert sharded.signature_counts == serial.signature_counts

    def test_worker_count_does_not_matter(self):
        two = run_campaign_fleet(config=CFG, iterations=160, jobs=2,
                                 seed=11, block=40)
        three = run_campaign_fleet(config=CFG, iterations=160, jobs=3,
                                   seed=11, block=40)
        assert two.signature_counts == three.signature_counts

    def test_custom_executor_cannot_be_sharded(self):
        from repro.sim.executor import OperationalExecutor

        class Custom(OperationalExecutor):
            pass

        campaign = Campaign(config=CFG, executor_cls=Custom)
        with pytest.raises(ReproError):
            campaign.run(40, jobs=2)


class TestCrashTolerance:
    """Acceptance: a dying worker is a crash outcome, not an abort."""

    X86 = TestConfig(isa="x86", threads=2, ops_per_thread=8, addresses=4,
                     seed=3)

    def test_bug3_device_death_recorded_as_crashes(self):
        # bug 3 (writeback race) crashes every iteration; die_on_crash
        # makes the worker die like real silicon, so after the bounded
        # retries each shard lands in the crash column and the campaign
        # still completes.
        with obs.enabled_obs() as handle:
            merged = run_campaign_fleet(
                config=self.X86, iterations=60, jobs=2, seed=5, block=20,
                detailed=True, bug=3, l1_lines=2, die_on_crash=True,
                fleet=FleetConfig(max_retries=1))
            assert merged.iterations == 60
            assert merged.crashes == 60
            assert merged.unique_signatures == 0
            assert handle.metrics.get("fleet.worker_retries").value >= 1
            assert handle.metrics.get("fleet.shards_crashed").value == 2

    def test_crashed_result_still_checks(self):
        merged = run_campaign_fleet(
            config=self.X86, iterations=40, jobs=2, seed=5, block=20,
            detailed=True, bug=3, l1_lines=2, die_on_crash=True,
            fleet=FleetConfig(max_retries=0))
        outcome = check_campaign_result(merged)
        assert outcome.collective.num_graphs == 0

    def test_in_simulation_crashes_without_device_death(self):
        # without die_on_crash the worker survives bug-3 iterations and
        # ships its multiset with the per-iteration crash count; the
        # multiset matches the serial run's exactly
        merged = run_campaign_fleet(
            config=self.X86, iterations=40, jobs=2, seed=5, block=20,
            detailed=True, bug=3, l1_lines=2)
        assert merged.iterations == 40
        assert merged.crashes >= 1              # writeback races fired
        from repro.sim.detailed import DetailedExecutor
        from repro.sim.faults import Bug, FaultConfig
        from repro.sim.platform import GEM5_X86_8CORE

        faults = FaultConfig(bug=Bug.WRITEBACK_RACE, l1_lines=2)
        serial = Campaign(
            config=self.X86, platform=GEM5_X86_8CORE, seed=5,
            executor_cls=lambda *a, **kw: DetailedExecutor(
                *a, faults=faults, **kw)).run(40, block=20)
        assert merged.crashes == serial.crashes
        assert merged.signature_counts == serial.signature_counts


class TestFleetObservability:
    def test_phase_spans_and_fleet_metrics(self):
        with obs.enabled_obs() as handle:
            run_campaign_fleet(config=CFG, iterations=80, jobs=2, seed=1,
                               block=40)
            assert handle.tracer.node("generate") is not None
            assert handle.tracer.node("execute") is not None
            assert handle.tracer.node("fleet.shard") is not None
            assert handle.tracer.node("fleet.merge") is not None
            metrics = handle.metrics
            assert metrics.get("fleet.jobs").value == 2
            assert metrics.get("fleet.shards").value == 2
            assert metrics.get("fleet.merge_seconds").count == 1
            # worker-side series shipped home and absorbed by the host
            assert metrics.get("harness.iterations").value == 80

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            run_campaign_fleet(config=CFG, iterations=10, jobs=0)
        with pytest.raises(ValueError):
            run_campaign_fleet(iterations=10, jobs=2)


class TestSuiteFleet:
    def test_sharded_suite_matches_serial(self):
        cfg = TestConfig(threads=2, ops_per_thread=8, addresses=4, seed=2)
        serial = SuiteRunner(cfg, tests=3, iterations=60).run(seed=4)
        fleet = SuiteRunner(cfg, tests=3, iterations=60, jobs=2).run(seed=4)
        assert fleet.unique_signatures == serial.unique_signatures
        assert fleet.crashes == serial.crashes
        assert fleet.violating_signatures == serial.violating_signatures
        assert fleet.method_counts == serial.method_counts
        assert fleet.collective_sorted_vertices == \
               serial.collective_sorted_vertices
        assert fleet.baseline_sorted_vertices == \
               serial.baseline_sorted_vertices

    def test_unsupported_campaign_kwargs_rejected(self):
        from repro.sim.executor import OperationalExecutor

        cfg = TestConfig(threads=2, ops_per_thread=8, addresses=4, seed=2)
        runner = SuiteRunner(cfg, tests=1, iterations=20, jobs=2,
                             executor_cls=OperationalExecutor)
        with pytest.raises(ReproError):
            runner.run()

    def test_jobs_must_be_positive(self):
        cfg = TestConfig(threads=2, ops_per_thread=8, addresses=4, seed=2)
        with pytest.raises(ValueError):
            SuiteRunner(cfg, jobs=0)
