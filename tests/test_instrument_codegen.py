"""Unit tests for instrumented-code generation and the size model."""

import pytest

from repro.instrument import SignatureCodec, code_size, emit_listing
from repro.testgen import TestConfig, generate


def make(isa="arm", **kw):
    cfg = TestConfig(isa=isa, threads=kw.pop("threads", 2),
                     ops_per_thread=kw.pop("ops", 50),
                     addresses=kw.pop("addresses", 32), seed=kw.pop("seed", 1))
    p = generate(cfg)
    return p, SignatureCodec(p, cfg.register_width), cfg


class TestCodeSize:
    def test_instrumented_larger_than_original(self):
        p, codec, cfg = make()
        cs = code_size(p, codec, cfg.isa)
        assert cs.instrumented_bytes > cs.original_bytes
        assert cs.instrumented_insns > cs.original_insns

    def test_ratio_shape(self):
        """Paper Figure 12: ratios 1.95x-8.16x.  Our byte model emits the
        literal Figure-4 if/else chains (no conditional-execution or
        jump-table tightening), so high-contention ratios run ~2x the
        paper's; the shape — small floor, growth with contention — holds."""
        ratios = []
        for isa, threads, ops, addrs in [("arm", 2, 50, 64), ("arm", 7, 200, 64),
                                         ("x86", 2, 50, 32), ("x86", 4, 200, 64)]:
            cfg = TestConfig(isa=isa, threads=threads, ops_per_thread=ops,
                             addresses=addrs, seed=5)
            p = generate(cfg)
            ratios.append(code_size(p, SignatureCodec(p, cfg.register_width), isa).ratio)
        assert all(1.5 <= r <= 20 for r in ratios)
        # contention increases the ratio: big test > small test
        assert ratios[1] > ratios[0]

    def test_fits_in_l1_per_core(self):
        """Even ARM-7-200-64 fits each core's 32 kB I-cache (paper: 27 kB/core)."""
        cfg = TestConfig(isa="arm", threads=7, ops_per_thread=200, addresses=64, seed=2)
        p = generate(cfg)
        cs = code_size(p, SignatureCodec(p, 32), "arm")
        assert cs.fits_in_l1(32 * 1024, threads=7)

    def test_unknown_isa_rejected(self):
        p, codec, _ = make()
        with pytest.raises(ValueError):
            code_size(p, codec, "riscv")

    def test_arm_instructions_are_four_bytes(self):
        p, codec, _ = make()
        cs = code_size(p, codec, "arm")
        assert cs.original_bytes == cs.original_insns * 4
        assert cs.instrumented_bytes == cs.instrumented_insns * 4


class TestListing:
    def test_listing_structure(self, figure3_program):
        codec = SignatureCodec(figure3_program, 64)
        text = emit_listing(figure3_program, codec)
        assert "thread 0:" in text and "thread 2:" in text
        assert "init: sig0 = 0" in text
        assert "finish: store sig0 to memory" in text
        assert "else assert error" in text

    def test_listing_shows_figure4_weights(self, figure3_program):
        """Thread 0's second load gets weights 0, 3, 6, 9 (Figure 4)."""
        codec = SignatureCodec(figure3_program, 64)
        text = emit_listing(figure3_program, codec)
        assert "sig0 += 3" in text
        assert "sig0 += 6" in text
        assert "sig0 += 9" in text

    def test_listing_compare_values_are_store_ids(self, figure3_program):
        codec = SignatureCodec(figure3_program, 64)
        text = emit_listing(figure3_program, codec)
        assert "if (value==9) sig0 += 2" in text

    def test_every_load_gets_a_chain(self, small_program, small_codec):
        text = emit_listing(small_program, small_codec)
        assert text.count("else assert error") == len(small_program.loads)
