"""Unit tests driving the MESI protocol engine directly."""

import random

import pytest

from repro.errors import ProtocolCrash
from repro.sim.coherence import CoherentSystem, EventQueue, Mesh
from repro.sim.faults import Bug, FaultConfig


def make_system(faults=FaultConfig(), cores=8):
    events = EventQueue()
    system = CoherentSystem(cores, random.Random(1), events, faults)
    return events, system


def drain(events, limit=10000):
    n = 0
    while events.run_next():
        n += 1
        assert n < limit, "protocol did not quiesce"


class TestEventQueue:
    def test_time_ordering(self):
        events = EventQueue()
        out = []
        events.schedule(2.0, out.append, "b")
        events.schedule(1.0, out.append, "a")
        drain(events)
        assert out == ["a", "b"]

    def test_fifo_for_equal_times(self):
        events = EventQueue()
        out = []
        events.schedule(1.0, out.append, 1)
        events.schedule(1.0, out.append, 2)
        drain(events)
        assert out == [1, 2]

    def test_len(self):
        events = EventQueue()
        events.schedule(1.0, lambda: None)
        assert len(events) == 1


class TestMeshFifo:
    def test_per_channel_fifo(self):
        events = EventQueue()
        mesh = Mesh(events, random.Random(3))
        order = []
        for i in range(20):
            mesh.send(("core", 0), ("dir", 1), order.append, i)
        drain(events)
        assert order == list(range(20))

    def test_distance_affects_latency(self):
        events = EventQueue()
        mesh = Mesh(events, random.Random(0))
        times = {}
        mesh.send(("core", 0), ("dir", 0), lambda: times.setdefault("near", events.now))
        mesh.send(("core", 0), ("dir", 1), lambda: times.setdefault("far", events.now))
        drain(events)
        assert times["near"] < times["far"]


class TestBasicCoherence:
    def test_load_returns_init_zero(self):
        events, system = make_system()
        got = []
        system.caches[0].load(0, 0, got.append)
        drain(events)
        assert got == [0]

    def test_store_then_remote_load(self):
        events, system = make_system()
        done = []
        system.caches[0].store(0, 0, 42, lambda: done.append("w"))
        drain(events)
        got = []
        system.caches[1].load(0, 0, got.append)
        drain(events)
        assert done == ["w"] and got == [42]

    def test_store_order_recorded(self):
        events, system = make_system()
        system.caches[0].store(0, 0, 1, lambda: None)
        drain(events)
        system.caches[1].store(0, 0, 2, lambda: None)
        drain(events)
        assert system.store_order[0] == [1, 2]

    def test_invalidation_callback_fires_on_remote_store(self):
        events, system = make_system()
        hits = []
        system.caches[0].on_inv = hits.append
        got = []
        system.caches[0].load(0, 0, got.append)   # core0 becomes sharer
        drain(events)
        system.caches[1].store(0, 0, 7, lambda: None)
        drain(events)
        assert hits == [0]

    def test_two_writers_serialize(self):
        events, system = make_system()
        system.caches[0].store(0, 0, 1, lambda: None)
        system.caches[1].store(0, 0, 2, lambda: None)
        drain(events)
        assert sorted(system.store_order[0]) == [1, 2]
        got = []
        system.caches[2].load(0, 0, got.append)
        drain(events)
        assert got == [system.store_order[0][-1]]

    def test_word_granularity_within_line(self):
        events, system = make_system()
        system.caches[0].store(0, 0, 5, lambda: None)
        system.caches[1].store(0, 1, 6, lambda: None)   # same line, other word
        drain(events)
        got = []
        system.caches[2].load(0, 0, got.append)
        system.caches[2].load(0, 1, got.append)
        drain(events)
        assert got == [5, 6]

    def test_upgrade_from_shared(self):
        events, system = make_system()
        got = []
        system.caches[0].load(0, 0, got.append)
        system.caches[1].load(0, 0, got.append)
        drain(events)
        done = []
        system.caches[0].store(0, 0, 9, lambda: done.append(True))
        drain(events)
        assert done == [True]
        check = []
        system.caches[1].load(0, 0, check.append)
        drain(events)
        assert check == [9]


class TestEvictions:
    def test_capacity_eviction_writes_back(self):
        events, system = make_system(FaultConfig(l1_lines=2))
        for line in range(3):
            system.caches[0].store(line, line * 16, line + 1, lambda: None)
            drain(events)
        # all three values must be recoverable from the system
        for line in range(3):
            got = []
            system.caches[1].load(line, line * 16, got.append)
            drain(events)
            assert got == [line + 1], line

    def test_eviction_squashes_speculative_loads(self):
        events, system = make_system(FaultConfig(l1_lines=2))
        squashed = []
        system.caches[0].on_inv = squashed.append
        for line in range(3):
            system.caches[0].load(line, line * 16, lambda v: None)
            drain(events)
        assert squashed   # the third fill evicted one of the first two


class TestBug3Race:
    def test_fetch_after_writeback_crashes_when_injected(self):
        events, system = make_system(FaultConfig(bug=Bug.WRITEBACK_RACE))
        # core0 owns the line, then "loses" it (simulate in-flight PUTX)
        system.caches[0].store(0, 0, 1, lambda: None)
        drain(events)
        del system.caches[0].lines[0]
        system.caches[0].wb_pending.add(0)
        with pytest.raises(ProtocolCrash):
            system.caches[0].handle_fetch(0, invalidate=True)

    def test_same_race_handled_when_not_injected(self):
        events, system = make_system(FaultConfig())
        system.caches[0].store(0, 0, 1, lambda: None)
        drain(events)
        # eviction puts the line in wb_pending with a PUTX in flight
        system.caches[0]._evict()
        # a racing GETX from core1 while the PUTX is still in flight
        got = []
        system.caches[1].store(0, 0, 2, lambda: got.append(True))
        drain(events)
        assert got == [True]
        assert system.store_order[0] == [1, 2]


class TestFaultConfig:
    def test_bug1_suppresses_sm_squash_only(self):
        f = FaultConfig(bug=Bug.LOAD_LOAD_PROTOCOL)
        assert f.squash_on_inv and not f.squash_on_inv_in_sm

    def test_bug2_suppresses_all_squash(self):
        f = FaultConfig(bug=Bug.LOAD_LOAD_LSQ)
        assert not f.squash_on_inv and not f.squash_on_inv_in_sm

    def test_bug3_crashes_on_race(self):
        assert FaultConfig(bug=Bug.WRITEBACK_RACE).crash_on_writeback_race

    def test_no_fault_defaults(self):
        f = FaultConfig()
        assert f.squash_on_inv and f.squash_on_inv_in_sm
        assert not f.crash_on_writeback_race
