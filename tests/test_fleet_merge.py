"""Unit tests for host-side signature-multiset merging."""

import pytest

from repro import io as repro_io
from repro.fleet import merge_campaign_results
from repro.harness import Campaign
from repro.harness.runner import CampaignResult
from repro.instrument import SignatureCodec
from repro.testgen import TestConfig


@pytest.fixture
def campaign():
    cfg = TestConfig(threads=2, ops_per_thread=10, addresses=8, seed=5)
    return Campaign(config=cfg, seed=9)


class TestMerge:
    def test_counts_sum_across_shards(self, campaign):
        whole = campaign.run(120, block=40)
        shards = [Campaign(program=campaign.program, config=campaign.config,
                           seed=9).run_blocks([(i, 40)]) for i in range(3)]
        merged = merge_campaign_results(shards)
        assert merged.signature_counts == whole.signature_counts
        assert merged.iterations == 120
        assert merged.unique_signatures == whole.unique_signatures

    def test_first_shard_wins_representatives(self, campaign):
        a = campaign.run_blocks([(0, 50)])
        b = Campaign(program=campaign.program, config=campaign.config,
                     seed=9).run_blocks([(0, 50)])
        merged = merge_campaign_results([a, b])
        for signature, representative in merged.representatives.items():
            if signature in a.representatives:
                assert representative is a.representatives[signature]

    def test_crashes_and_accounting_sum(self, campaign):
        a = campaign.run_blocks([(0, 30)])
        b = Campaign(program=campaign.program, config=campaign.config,
                     seed=9).run_blocks([(1, 30)])
        a.crashes, b.crashes = 2, 3
        merged = merge_campaign_results([a, b])
        assert merged.crashes == 5
        assert merged.test_accesses == a.test_accesses + b.test_accesses
        assert merged.base_cycles == pytest.approx(
            a.base_cycles + b.base_cycles)

    def test_single_result_is_identity(self, campaign):
        result = campaign.run(80)
        merged = merge_campaign_results([result])
        assert merged.signature_counts == result.signature_counts
        assert merged.crashes == result.crashes

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_campaign_results([])

    def test_mismatched_programs_rejected(self, campaign):
        other_cfg = TestConfig(threads=2, ops_per_thread=10, addresses=8,
                               seed=77)
        other = Campaign(config=other_cfg, seed=9)
        with pytest.raises(repro_io.FormatError):
            merge_campaign_results([campaign.run(40), other.run(40)])

    def test_mismatched_register_widths_rejected(self, campaign):
        result = campaign.run(40)
        wide = CampaignResult(result.program,
                              SignatureCodec(result.program, 64))
        with pytest.raises(repro_io.FormatError):
            merge_campaign_results([result, wide])

    def test_merging_loaded_dumps_roundtrips(self, campaign):
        whole = campaign.run(100, block=50)
        shards = [Campaign(program=campaign.program, config=campaign.config,
                           seed=9).run_blocks([(i, 50)]) for i in range(2)]
        loaded = [repro_io.load_campaign(repro_io.dump_campaign(s))
                  for s in shards]
        merged = merge_campaign_results(loaded)
        assert merged.signature_counts == whole.signature_counts
