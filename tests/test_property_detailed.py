"""Property-based tests for the detailed MESI simulator."""

from hypothesis import given, settings, strategies as st

from repro.graph import GraphBuilder, topological_sort
from repro.instrument import SignatureCodec, candidate_sources
from repro.mcm import TSO
from repro.sim.detailed import DetailedExecutor
from repro.sim.faults import FaultConfig
from repro.testgen import TestConfig, generate


@st.composite
def detailed_case(draw):
    cfg = TestConfig(
        isa="x86",
        threads=draw(st.integers(1, 4)),
        ops_per_thread=draw(st.integers(2, 20)),
        addresses=draw(st.integers(1, 8)),
        words_per_line=draw(st.sampled_from([1, 4])),
        seed=draw(st.integers(0, 50_000)),
    )
    l1_lines = draw(st.sampled_from([2, 4, 64]))
    seed = draw(st.integers(0, 500))
    return cfg, l1_lines, seed


@given(detailed_case())
@settings(max_examples=25, deadline=None)
def test_detailed_sim_bug_free_invariants(case):
    """For arbitrary small programs and cache sizes, the bug-free MESI
    simulator: never crashes, reads only statically-valid sources, keeps
    per-location same-thread coherence order, and produces TSO-acyclic
    constraint graphs."""
    cfg, l1_lines, seed = case
    program = generate(cfg)
    cands = candidate_sources(program)
    builder = GraphBuilder(program, TSO, ws_mode="observed")
    ex = DetailedExecutor(program, seed=seed, layout=cfg.layout,
                          faults=FaultConfig(l1_lines=l1_lines))
    for execution in ex.run(4):
        assert not execution.crashed
        for load_uid, source in execution.rf.items():
            assert source in cands[load_uid]
        for chain in execution.ws.values():
            last_per_thread = {}
            for uid in chain:
                thread = program.op(uid).thread
                assert last_per_thread.get(thread, -1) < uid
                last_per_thread[thread] = uid
        graph = builder.build(execution.rf, execution.ws)
        assert topological_sort(range(program.num_ops), graph.adjacency) is not None


@given(detailed_case())
@settings(max_examples=15, deadline=None)
def test_detailed_sim_signatures_roundtrip(case):
    """Signatures encode/decode exactly on detailed-simulator executions."""
    cfg, l1_lines, seed = case
    program = generate(cfg)
    codec = SignatureCodec(program, 64)
    ex = DetailedExecutor(program, seed=seed, layout=cfg.layout,
                          faults=FaultConfig(l1_lines=l1_lines))
    for execution in ex.run(3):
        signature = codec.encode(execution.rf)
        assert codec.decode(signature) == execution.rf
