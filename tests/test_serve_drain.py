"""Drain-semantics tests (repro.serve): no accepted batch is ever
dropped, no signature is checked twice, exactly one report per session.

Every scenario pins the flushed report against a serial oracle: the
batch ``check_campaign_result(..., pipeline="delta")`` summary over the
multiset of *acknowledged* batches.  Accepted-but-unacked work cannot
exist at the protocol level — a batch is accepted exactly when it is
(eventually) acked — so "covers the acked multiset byte-identically"
is simultaneously the no-drop and the no-double-check statement.
"""

import threading
import time

import pytest

from repro.harness import Campaign, CampaignResult, check_campaign_result
from repro.io import signature_from_entry
from repro.serve.client import ServeClient, iter_batches
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.testgen import TestConfig

from tests.test_serve_daemon import run_daemon


@pytest.fixture(scope="module")
def campaign_result():
    config = TestConfig(isa="arm", threads=2, ops_per_thread=18,
                        addresses=8, seed=23)
    return Campaign(config=config, seed=9).run(300)


def oracle_summary(result, entry_batches):
    """The serial-oracle summary over exactly these batches' multiset."""
    oracle = CampaignResult(result.program, result.codec)
    for entries in entry_batches:
        for entry in entries:
            signature, count = signature_from_entry(entry)
            oracle.signature_counts[signature] += count
    oracle.iterations = sum(oracle.signature_counts.values())
    return check_campaign_result(oracle, baseline=False,
                                 pipeline="delta").collective.summary()


class GatedDaemon(ServeDaemon):
    """A daemon whose batch checking blocks until the test says go —
    the deterministic way to fill queues and catch drains mid-batch."""

    def __init__(self, config=None):
        super().__init__(config)
        self.gate = threading.Event()

    def _check_batch(self, session, message):
        assert self.gate.wait(30), "test never opened the gate"
        return super()._check_batch(session, message)


class TestClientDisconnect:
    def test_disconnect_without_drain_still_flushes_the_report(
            self, campaign_result):
        """A client that vanishes mid-stream loses nothing it was acked
        for: the daemon flushes a report covering the acked batches."""
        batches = list(iter_batches(campaign_result, 8))[:4]
        with run_daemon(ServeConfig()) as handle:
            client = ServeClient("127.0.0.1", handle.port,
                                 campaign_result.program, 32,
                                 session="vanisher", window=2)
            for entries in batches:
                client.submit(entries)
            while client._pending:            # flush every ack
                client._read_reply()
            client.close()                    # no drain frame
            deadline = time.monotonic() + 15
            while not handle.daemon.reports and time.monotonic() < deadline:
                time.sleep(0.02)
            reports = list(handle.daemon.reports)
        assert len(reports) == 1
        report = reports[0]
        assert report.drained is False
        assert report.batches == len(batches)
        assert report.summary == oracle_summary(campaign_result, batches)

    def test_disconnect_with_unread_frames_covers_only_accepted(
            self, campaign_result):
        """Frames never read before the disconnect were never accepted:
        the report covers exactly the acked prefix, nothing phantom."""
        batches = list(iter_batches(campaign_result, 8))[:3]
        with run_daemon(ServeConfig()) as handle:
            client = ServeClient("127.0.0.1", handle.port,
                                 campaign_result.program, 32, window=8)
            client.submit(batches[0])
            while client._pending:
                client._read_reply()
            client.close()
            deadline = time.monotonic() + 15
            while not handle.daemon.reports and time.monotonic() < deadline:
                time.sleep(0.02)
            report = handle.daemon.reports[0]
        assert report.batches == 1
        assert report.summary == oracle_summary(campaign_result,
                                                batches[:1])


class TestQueueFullBusy:
    def test_busy_batches_are_resubmitted_not_lost(self, campaign_result):
        """queue_depth=1 plus a gated checker forces busy replies; after
        retries, the report must cover every batch exactly once."""
        batches = list(iter_batches(campaign_result, 8))[:5]
        daemon = GatedDaemon(ServeConfig(queue_depth=1,
                                         retry_after_s=0.01))
        with run_daemon(daemon=daemon) as handle:
            client = ServeClient("127.0.0.1", handle.port,
                                 campaign_result.program, 32,
                                 session="busy", window=8)
            for entries in batches:
                client.submit(entries)
            # open the gate only once the daemon has had to say busy at
            # least once: submits beyond slot+queue are all rejected
            opener = threading.Timer(0.3, daemon.gate.set)
            opener.start()
            report = client.drain()
            client.close()
            opener.join()
        assert client.busy_replies > 0
        assert len(client.acks) == len(batches)
        # each batch acked exactly once, in one piece
        assert sorted(a["seq"] for a in client.acks) == \
            list(range(1, len(batches) + 1))
        assert report["summary"] == oracle_summary(campaign_result, batches)
        # no double-check: novel counts over the acks sum to the unique
        # count of the submitted multiset (a re-checked signature would
        # inflate this; a dropped one would deflate the summary above)
        uniques = {signature_from_entry(e)[0]
                   for entries in batches for e in entries}
        assert sum(a["novel"] for a in client.acks) == len(uniques)


class TestDaemonDrainMidStream:
    def test_sigterm_finishes_accepted_batches_then_reports(
            self, campaign_result):
        """The SIGTERM handler body (request_drain) arriving with
        batches queued and one mid-check: all accepted batches finish,
        exactly one report is flushed, drained=True."""
        batches = list(iter_batches(campaign_result, 8))[:3]
        daemon = GatedDaemon(ServeConfig(queue_depth=8))
        with run_daemon(daemon=daemon) as handle:
            client = ServeClient("127.0.0.1", handle.port,
                                 campaign_result.program, 32,
                                 session="sigterm", window=8)
            for entries in batches:
                client.submit(entries)
            # all three are accepted (consumer holds one at the gate,
            # two queued); drain lands mid-batch, then the gate opens
            time.sleep(0.2)
            handle.daemon.loop.call_soon_threadsafe(
                handle.daemon.request_drain, "sigterm")
            daemon.gate.set()
            while client.report is None:
                client._read_reply()
            client.close()
            handle._thread.join(30)
            assert not handle._thread.is_alive()
        assert client.report["drained"] is True
        assert len(client.acks) == len(batches)
        assert len(daemon.reports) == 1
        assert client.report["summary"] == \
            oracle_summary(campaign_result, batches)

    def test_unread_submit_at_drain_is_not_accepted(self, campaign_result):
        """A frame still in the socket when drain cancels the read was
        never accepted: no ack, and the report excludes it — the client
        knows exactly which batches need re-submitting elsewhere."""
        batches = list(iter_batches(campaign_result, 8))[:2]
        daemon = GatedDaemon(ServeConfig(queue_depth=8))
        with run_daemon(daemon=daemon) as handle:
            client = ServeClient("127.0.0.1", handle.port,
                                 campaign_result.program, 32, window=8)
            client.submit(batches[0])
            time.sleep(0.2)           # batch 0 accepted (held at gate)
            handle.daemon.loop.call_soon_threadsafe(
                handle.daemon.request_drain, "sigterm")
            time.sleep(0.2)           # intake already stopped
            client.submit(batches[1])
            daemon.gate.set()
            while client.report is None:
                client._read_reply()
            client.close()
            handle._thread.join(30)
        assert client.report["summary"] == oracle_summary(campaign_result,
                                                          batches[:1])
        # the unacked batch is still pending from the client's view
        acked = {a["seq"] for a in client.acks}
        assert acked == {1}

    def test_drain_with_no_sessions_exits_cleanly(self):
        with run_daemon(ServeConfig()) as handle:
            handle.drain("sigterm")
        assert handle.daemon.reports == []
