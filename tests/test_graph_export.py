"""Unit tests for constraint-graph export (networkx / DOT)."""

import networkx as nx

from repro.graph import GraphBuilder, find_cycle, to_dot, to_networkx
from repro.mcm import TSO
from repro.testgen.litmus import corr, store_buffering


def corr_graph():
    lt = corr()
    builder = GraphBuilder(lt.program, TSO, ws_mode="static")
    return lt.program, builder.build(lt.interesting_rf)


class TestToNetworkx:
    def test_edges_preserved_with_kinds(self):
        program, graph = corr_graph()
        g = to_networkx(graph, program)
        assert g.number_of_edges() == graph.num_edges
        for u, v, data in g.edges(data=True):
            assert data["kind"] == graph.edge_kind(u, v)

    def test_node_labels(self):
        program, graph = corr_graph()
        g = to_networkx(graph, program)
        assert g.nodes[0]["label"] == program.op(0).describe()
        assert g.nodes[0]["thread"] == 0

    def test_cycle_detection_agrees(self):
        program, graph = corr_graph()
        g = to_networkx(graph)
        assert not nx.is_directed_acyclic_graph(g)   # CoRR outcome is cyclic

    def test_acyclic_case(self):
        lt = store_buffering()
        builder = GraphBuilder(lt.program, TSO, ws_mode="static")
        graph = builder.build(lt.interesting_rf)
        assert nx.is_directed_acyclic_graph(to_networkx(graph))


class TestToDot:
    def test_dot_structure(self):
        program, graph = corr_graph()
        dot = to_dot(graph, program)
        assert dot.startswith("digraph")
        assert "subgraph cluster_t0" in dot
        assert '"rf"' in dot and '"po"' in dot

    def test_dot_without_program(self):
        _, graph = corr_graph()
        dot = to_dot(graph)
        assert "subgraph" not in dot
        assert "n0 ->" in dot or "-> n0" in dot

    def test_cycle_highlighting(self):
        program, graph = corr_graph()
        cycle = find_cycle(range(program.num_ops), graph.adjacency)
        dot = to_dot(graph, program, highlight_cycle=cycle)
        assert "penwidth=3" in dot

    def test_dot_edge_count(self):
        program, graph = corr_graph()
        dot = to_dot(graph, program)
        assert dot.count(" -> ") == graph.num_edges
