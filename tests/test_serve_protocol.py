"""Unit tests for the serve wire protocol (repro.serve.protocol)."""

import io

import pytest

from repro.io import TruncatedPayloadError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_KINDS,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    expect_kind,
    negotiate_hello,
    protocol_markdown,
    read_frame,
    write_frame,
)


def _roundtrip(message):
    buffer = io.BytesIO()
    write_frame(buffer.write, message)
    buffer.seek(0)
    return read_frame(buffer.read)


class TestFraming:
    def test_round_trip(self):
        message = {"kind": "ack", "seq": 3, "novel": 2, "repeats": 1,
                   "violations": 0, "queued": 0}
        assert _roundtrip(message) == message

    def test_back_to_back_frames(self):
        buffer = io.BytesIO()
        write_frame(buffer.write, {"kind": "drain", "seq": 1})
        write_frame(buffer.write, {"kind": "drain", "seq": 2})
        buffer.seek(0)
        assert read_frame(buffer.read)["seq"] == 1
        assert read_frame(buffer.read)["seq"] == 2
        with pytest.raises(EOFError):
            read_frame(buffer.read)

    def test_clean_eof_between_frames_is_eoferror(self):
        with pytest.raises(EOFError):
            read_frame(io.BytesIO().read)

    def test_mid_payload_cut_is_typed_truncation(self):
        frame = encode_frame({"kind": "drain", "seq": 9})
        cut = io.BytesIO(frame[:-4])
        with pytest.raises(TruncatedPayloadError) as err:
            read_frame(cut.read)
        assert err.value.offset == len(frame) - 4 - 4

    def test_mid_prefix_cut_is_typed_truncation(self):
        frame = encode_frame({"kind": "drain", "seq": 9})
        with pytest.raises(TruncatedPayloadError):
            read_frame(io.BytesIO(frame[:2]).read)

    def test_oversized_length_prefix_refused(self):
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(bogus).read)

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"kind": "submit",
                          "blob": "x" * (MAX_FRAME_BYTES + 1)})


class TestKinds:
    def test_expect_kind_accepts_registered(self):
        assert expect_kind({"kind": "ack"}, "ack", "busy") == "ack"

    def test_expect_kind_rejects_unknown(self):
        with pytest.raises(ProtocolError):
            expect_kind({"kind": "frobnicate"})

    def test_expect_kind_rejects_wrong_direction(self):
        with pytest.raises(ProtocolError):
            expect_kind({"kind": "ack"}, "submit", "drain")

    def test_registry_covers_both_legs(self):
        directions = {k.direction for k in MESSAGE_KINDS.values()}
        assert directions == {"client->server", "server->client",
                              "worker->pool", "pool->worker"}


class TestHello:
    def _hello(self, **overrides):
        message = {"kind": "hello", "v": PROTOCOL_VERSION,
                   "program": {"name": "t", "listing": "..."},
                   "register_width": 32, "session": ""}
        message.update(overrides)
        return message

    def test_valid_hello_accepted(self):
        assert negotiate_hello(self._hello())["register_width"] == 32

    def test_version_mismatch_names_supported_version(self):
        with pytest.raises(ProtocolError) as err:
            negotiate_hello(self._hello(v=99))
        assert "version %d" % PROTOCOL_VERSION in str(err.value)

    def test_missing_program_rejected(self):
        with pytest.raises(ProtocolError):
            negotiate_hello(self._hello(program=None))

    def test_bad_register_width_rejected(self):
        with pytest.raises(ProtocolError):
            negotiate_hello(self._hello(register_width=48))


class TestReference:
    def test_markdown_mentions_every_kind(self):
        text = protocol_markdown()
        for name in MESSAGE_KINDS:
            assert "### `%s`" % name in text

    def test_markdown_matches_committed_doc(self):
        # `python -m repro serve --protocol-doc` prints the reference,
        # so the committed file carries print's final newline
        with open("docs/SERVE_PROTOCOL.md") as handle:
            assert handle.read() == protocol_markdown() + "\n"
