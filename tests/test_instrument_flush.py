"""Unit tests for the register-flushing baseline and intrusiveness."""

from repro.instrument import SignatureCodec, flush_log_size, intrusiveness
from repro.testgen import TestConfig, generate


def make(isa="arm", threads=2, ops=50, addrs=32, seed=1):
    cfg = TestConfig(isa=isa, threads=threads, ops_per_thread=ops,
                     addresses=addrs, seed=seed)
    p = generate(cfg)
    return p, SignatureCodec(p, cfg.register_width)


class TestIntrusiveness:
    def test_flush_logs_one_word_per_load(self):
        p, _ = make()
        assert flush_log_size(p) == len(p.loads)

    def test_signature_accesses_much_smaller(self):
        """Figure 11: signatures need only ~4-12% of flushing accesses."""
        p, codec = make()
        report = intrusiveness(p, codec)
        assert report.signature_accesses < report.flush_accesses
        assert report.normalized < 0.25

    def test_normalized_grows_with_contention(self):
        """More threads/ops and fewer addresses -> bigger signatures ->
        more unrelated accesses (paper: 3.9% to 11.5%)."""
        _, codec_low = make(threads=2, ops=50, addrs=64)
        _, codec_high = make(threads=7, ops=200, addrs=64)
        p_low = codec_low.program
        p_high = codec_high.program
        low = intrusiveness(p_low, codec_low).normalized
        high = intrusiveness(p_high, codec_high).normalized
        assert high > low

    def test_report_fields_consistent(self):
        p, codec = make()
        report = intrusiveness(p, codec)
        assert report.test_accesses == len(p.loads) + len(p.stores)
        assert report.flush_accesses == len(p.loads)
        assert report.signature_accesses == codec.total_words
        assert report.signature_bytes == codec.byte_size
        assert report.signature_overhead == (
            report.signature_accesses / report.test_accesses)
