"""Unit + property tests for the streaming graph-delta machinery.

Covers the three delta-pipeline building blocks below the checker:
refcounted :class:`DeltaGraphState` updates, the builder's per-load
dynamic edge-pair table, and the codec's incremental ``decode_delta``.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CheckerError, SignatureError
from repro.graph import DeltaGraphState, GraphBuilder, GraphDelta
from repro.instrument import Signature, SignatureCodec
from repro.mcm import WEAK
from repro.testgen import TestConfig, generate


def delta(removed=(), added=(), index=1):
    return GraphDelta(index, tuple(removed), tuple(added), len(added))


class TestDeltaGraphState:
    def test_base_pairs_populate_counts_and_adjacency(self):
        state = DeltaGraphState(4, [(0, 1), (1, 2)])
        assert state.num_edges == 2
        assert (0, 1) in state and (1, 2) in state
        assert state.adjacency == {0: [1], 1: [2]}

    def test_duplicate_base_pairs_refcount_single_pair(self):
        state = DeltaGraphState(3, [(0, 1), (0, 1)])
        assert state.num_edges == 1
        assert state.adjacency == {0: [1]}

    def test_self_loops_are_dropped(self):
        state = DeltaGraphState(3, [(1, 1)])
        assert state.num_edges == 0
        assert state.adjacency == {}

    def test_apply_reports_presence_transitions_only(self):
        state = DeltaGraphState(4, [(0, 1), (0, 1), (1, 2)])
        appeared, vanished = state.apply(
            delta(removed=[(0, 1), (1, 2)], added=[(2, 3)]))
        # (0, 1) had two contributors: still present, not a transition
        assert appeared == [(2, 3)]
        assert vanished == [(1, 2)]
        assert (0, 1) in state
        assert state.adjacency[1] == []
        assert state.adjacency[2] == [3]

    def test_refcounted_pair_survives_one_removal(self):
        state = DeltaGraphState(3, [(0, 1), (0, 1)])
        state.apply(delta(removed=[(0, 1)]))
        assert (0, 1) in state
        state.apply(delta(removed=[(0, 1)]))
        assert (0, 1) not in state

    def test_removing_absent_edge_raises(self):
        state = DeltaGraphState(3, [(0, 1)])
        with pytest.raises(KeyError):
            state.apply(delta(removed=[(1, 2)]))

    def test_added_self_loop_is_ignored(self):
        state = DeltaGraphState(3)
        appeared, _ = state.apply(delta(added=[(2, 2)]))
        assert appeared == []
        assert state.num_edges == 0

    def test_edge_pairs_snapshot(self):
        state = DeltaGraphState(4, [(0, 1), (2, 3)])
        assert state.edge_pairs() == frozenset({(0, 1), (2, 3)})

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_walk_matches_pair_multiset(self, seed):
        """State presence always equals the reference contributor multiset."""
        rng = random.Random(seed)
        n = rng.randrange(3, 10)
        contributors: list = []
        state = DeltaGraphState(n)
        for _ in range(rng.randrange(1, 30)):
            if contributors and rng.random() < 0.4:
                pair = contributors.pop(rng.randrange(len(contributors)))
                state.apply(delta(removed=[pair]))
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                contributors.append((u, v))
                state.apply(delta(added=[(u, v)]))
            expected = set(contributors)
            assert state.edge_pairs() == frozenset(expected)
            for u in state.adjacency:
                assert set(state.adjacency[u]) == \
                    {v for (s, v) in expected if s == u}


@pytest.fixture
def small_builder(small_program):
    return GraphBuilder(small_program, WEAK, ws_mode="static")


def random_rf(codec, rng):
    return {uid: rng.choice(cands) for uid, cands in codec.candidates.items()}


class TestPerLoadEdgeTable:
    def test_observed_mode_has_no_edge_table(self, small_program):
        builder = GraphBuilder(small_program, WEAK, ws_mode="observed")
        load_uid = next(iter(SignatureCodec(small_program, 32).candidates))
        with pytest.raises(CheckerError):
            builder.dynamic_edge_pairs(load_uid, None)

    def test_entries_are_memoized(self, small_builder, small_codec):
        load_uid, cands = next(iter(small_codec.candidates.items()))
        first = small_builder.dynamic_edge_pairs(load_uid, cands[0])
        assert small_builder.dynamic_edge_pairs(load_uid, cands[0]) is first

    def test_sum_of_contributions_equals_built_graph(self, small_builder,
                                                     small_codec):
        """static pairs + per-load dynamic pairs == build(rf), as pair sets."""
        rng = random.Random(5)
        for _ in range(10):
            rf = random_rf(small_codec, rng)
            pairs = {(e.src, e.dst) for e in small_builder.static_edges
                     if e.src != e.dst}
            for load_uid, source in rf.items():
                pairs.update(small_builder.dynamic_edge_pairs(load_uid, source))
            assert pairs == set(small_builder.build(rf).edge_pairs)

    def test_iter_execution_pairs_seeds_exact_state(self, small_builder,
                                                    small_codec):
        rng = random.Random(11)
        rf = random_rf(small_codec, rng)
        state = DeltaGraphState(small_builder.program.num_ops,
                                small_builder.iter_execution_pairs(rf))
        graph = small_builder.build(rf)
        assert state.edge_pairs() == graph.edge_pairs
        for u, succs in graph.adjacency.items():
            assert set(state.adjacency.get(u, ())) == set(succs)


class TestDecodeDelta:
    def test_identical_signatures_have_empty_delta(self, small_codec):
        rf = random_rf(small_codec, random.Random(0))
        sig = small_codec.encode(rf)
        assert small_codec.decode_delta(sig, sig) == []

    def test_reports_exactly_the_changed_loads(self, small_codec):
        rng = random.Random(1)
        old = random_rf(small_codec, rng)
        new = dict(old)
        load_uid, cands = next((uid, c) for uid, c in
                               small_codec.candidates.items() if len(c) > 1)
        new[load_uid] = next(c for c in cands if c != old[load_uid])
        changes = small_codec.decode_delta(small_codec.encode(old),
                                           small_codec.encode(new))
        assert changes == [(load_uid, old[load_uid], new[load_uid])]

    def test_rejects_wrong_thread_count(self, small_codec):
        rf = random_rf(small_codec, random.Random(2))
        with pytest.raises(SignatureError):
            small_codec.decode_delta(small_codec.encode(rf), Signature(((0,),)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_delta_applied_to_old_rf_yields_new_rf(self, seed):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=14,
                         addresses=4, seed=17)
        codec = SignatureCodec(generate(cfg), 32)
        rng = random.Random(seed)
        old, new = random_rf(codec, rng), random_rf(codec, rng)
        changes = codec.decode_delta(codec.encode(old), codec.encode(new))
        patched = dict(old)
        for load_uid, old_source, new_source in changes:
            assert patched[load_uid] == old_source
            patched[load_uid] = new_source
        assert patched == new
        # and the change list is minimal: only genuinely differing loads
        assert all(old[uid] != new[uid] for uid, _, _ in changes)
        assert len(changes) == sum(1 for uid in old if old[uid] != new[uid])


class TestDeltaWalkOverCampaignSignatures:
    def test_walk_reconstructs_every_graph(self, small_builder, small_codec):
        """Applying the delta stream reproduces each fully built graph."""
        from repro.checker import SignatureDeltaSource

        rng = random.Random(23)
        signatures = sorted({small_codec.encode(random_rf(small_codec, rng))
                             for _ in range(40)})
        source = SignatureDeltaSource(small_codec, small_builder, signatures)
        state = source.base_state(0)
        assert state.edge_pairs() == source.full_graph(0).edge_pairs
        for index in range(1, len(source)):
            state.apply(source.delta(index))
            assert state.edge_pairs() == source.full_graph(index).edge_pairs
