"""Unit tests for TestProgram / ThreadProgram."""

import pytest

from repro.errors import ProgramError
from repro.isa import TestProgram, ThreadProgram, barrier, load, store


def make_program():
    return TestProgram.from_ops(
        [
            [store(0, 0, 0, 1), load(0, 1, 1)],
            [store(1, 0, 1, 2), barrier(1, 1), load(1, 2, 0)],
        ],
        num_addresses=2, name="t",
    )


class TestConstruction:
    def test_uids_are_dense_in_thread_order(self):
        p = make_program()
        assert [op.uid for op in p.all_ops] == list(range(5))

    def test_num_ops_includes_barriers(self):
        assert make_program().num_ops == 5

    def test_num_threads(self):
        assert make_program().num_threads == 2

    def test_duplicate_store_ids_rejected(self):
        with pytest.raises(ProgramError):
            TestProgram.from_ops(
                [[store(0, 0, 0, 1), store(0, 1, 1, 1)]], num_addresses=2)

    def test_out_of_range_address_rejected(self):
        with pytest.raises(ProgramError):
            TestProgram.from_ops([[load(0, 0, 9)]], num_addresses=2)

    def test_reserved_store_id_rejected(self):
        from repro.isa.instructions import Operation, OpKind

        bad = Operation(OpKind.STORE, 0, 0, addr=0, value=0)
        with pytest.raises(ProgramError):
            TestProgram.from_ops([[bad]], num_addresses=1)

    def test_thread_append_validates_position(self):
        tp = ThreadProgram(0)
        tp.append(load(0, 0, 0))
        with pytest.raises(ProgramError):
            tp.append(load(0, 5, 0))
        with pytest.raises(ProgramError):
            tp.append(load(1, 1, 0))


class TestQueries:
    def test_op_lookup_by_uid(self):
        p = make_program()
        for op in p.all_ops:
            assert p.op(op.uid) is op

    def test_store_with_value(self):
        p = make_program()
        assert p.store_with_value(2).thread == 1

    def test_store_with_unknown_value_raises(self):
        with pytest.raises(ProgramError):
            make_program().store_with_value(99)

    def test_stores_to(self):
        p = make_program()
        assert [s.value for s in p.stores_to(0)] == [1]
        assert [s.value for s in p.stores_to(1)] == [2]
        assert p.stores_to(7) == []

    def test_loads_and_stores_lists(self):
        p = make_program()
        assert len(p.loads) == 2
        assert len(p.stores) == 2

    def test_thread_loads_stores(self):
        p = make_program()
        assert len(p.threads[1].loads) == 1
        assert len(p.threads[1].stores) == 1

    def test_describe_lists_all_threads(self):
        text = make_program().describe()
        assert "thread 0:" in text and "thread 1:" in text
        assert "st [0x0] #1" in text

    def test_repr(self):
        assert "2 threads" in repr(make_program())

    def test_iteration_over_thread(self):
        p = make_program()
        assert list(p.threads[0]) == p.threads[0].ops
        assert len(p.threads[0]) == 2
