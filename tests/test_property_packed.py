"""Property-based three-way differential: packed == delta == legacy.

For any generated program, execution sample and memory model — including
checking weak-hardware executions against stronger models, which yields
genuine violations — the packed array core must reproduce the delta and
legacy collective checkers byte for byte: the same report summary
(verdict methods, violation indices, witness cycles, sorted-vertices
accounting) and the same delta work counts.  The runner property pins
the ``observed`` ws-mode fallback: packed declines blocks whose graphs
are not a pure function of the signature.
"""

from hypothesis import given, settings, strategies as st

from repro.checker import (
    CollectiveChecker,
    PackedChecker,
    PackedPlan,
    SignatureDeltaSource,
)
from repro.graph import GraphBuilder
from repro.harness import Campaign, check_campaign_result
from repro.instrument import SignatureCodec
from repro.mcm import SC, TSO, WEAK
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate

_MODELS = {"sc": SC, "tso": TSO, "weak": WEAK}

try:
    import numpy  # noqa: F401  (backend availability probe)
    _BACKENDS = ["numpy", "array"]
except ImportError:
    _BACKENDS = ["array"]


@st.composite
def packed_case(draw):
    cfg = TestConfig(
        threads=draw(st.integers(1, 4)),
        ops_per_thread=draw(st.integers(2, 25)),
        addresses=draw(st.integers(1, 8)),
        seed=draw(st.integers(0, 100_000)),
    )
    #: run on weak hardware, check against a drawn (possibly stronger)
    #: model — the violation-bearing half of the space
    check_model = _MODELS[draw(st.sampled_from(sorted(_MODELS)))]
    width = draw(st.sampled_from([32, 64]))
    seed = draw(st.integers(0, 1000))
    backend = draw(st.sampled_from(_BACKENDS))
    return cfg, check_model, width, seed, backend


@given(packed_case())
@settings(max_examples=25, deadline=None)
def test_packed_equals_delta_equals_legacy(case):
    cfg, check_model, width, seed, backend = case
    program = generate(cfg)
    codec = SignatureCodec(program, width)
    executor = OperationalExecutor(program, WEAK, seed=seed,
                                   layout=cfg.layout)
    signatures = sorted({codec.encode(e.rf) for e in executor.run(12)})
    builder = GraphBuilder(program, check_model, ws_mode="static")
    graphs = [builder.build(codec.decode(sig)) for sig in signatures]
    legacy = CollectiveChecker().check(graphs)
    delta = CollectiveChecker().check_deltas(
        SignatureDeltaSource(codec, builder, signatures))
    plan = PackedPlan(codec, builder, signatures, backend=backend)
    packed = PackedChecker().check(plan)
    assert packed.summary() == delta.summary() == legacy.summary()
    assert (packed.digits_changed, packed.edges_added,
            packed.edges_removed) == \
           (delta.digits_changed, delta.edges_added, delta.edges_removed)
    assert sorted(plan.bucket_order) == list(range(len(signatures)))


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_runner_parity_and_observed_fallback(seed):
    campaign = Campaign(config=TestConfig(
        isa="arm", threads=2, ops_per_thread=12, addresses=4,
        seed=seed % 50), seed=seed // 50)
    result = campaign.run(60)
    packed = check_campaign_result(result, campaign.model, pipeline="packed")
    delta = check_campaign_result(result, campaign.model, pipeline="delta")
    assert packed.pipeline == "packed"
    assert packed.collective.summary() == delta.collective.summary()
    assert packed.baseline.summary() == delta.baseline.summary()
    observed = check_campaign_result(result, campaign.model,
                                     ws_mode="observed", pipeline="packed")
    assert observed.pipeline == "graphs"
    # observed-ws checking is strictly no weaker than static
    assert len(observed.collective.violations) >= \
        len(packed.collective.violations)
