"""Unit tests for test merging (paper Section 8 scalability)."""

import pytest

from repro.errors import ProgramError
from repro.instrument import SignatureCodec, candidate_sources
from repro.isa import MemoryLayout
from repro.testgen import TestConfig, generate, merge_tests


def make_segments(n=2, threads=2, ops=10):
    cfg = TestConfig(threads=threads, ops_per_thread=ops, addresses=4)
    return [generate(cfg.with_seed(100 + i)) for i in range(n)]


class TestMerge:
    def test_merged_shape(self):
        merged = merge_tests(make_segments(3))
        assert merged.num_threads == 2
        assert all(len(tp) == 30 for tp in merged.threads)
        assert merged.num_addresses == 12

    def test_store_ids_stay_unique(self):
        merged = merge_tests(make_segments(3))
        values = [op.value for op in merged.stores]
        assert len(values) == len(set(values))

    def test_segments_use_disjoint_addresses(self):
        segments = make_segments(2, ops=10)
        merged = merge_tests(segments)
        for tp in merged.threads:
            seg0_addrs = {op.addr for op in tp.ops[:10] if op.addr is not None}
            seg1_addrs = {op.addr for op in tp.ops[10:] if op.addr is not None}
            assert all(a % 2 == 0 for a in seg0_addrs)
            assert all(a % 2 == 1 for a in seg1_addrs)

    def test_false_sharing_across_segments(self):
        """With >1 word per line, remapped words of different segments
        share cache lines (the point of the merge layout)."""
        merged = merge_tests(make_segments(2))
        layout = MemoryLayout(merged.num_addresses, 4)
        # word 0 (segment 0) and word 1 (segment 1) share line 0
        assert layout.line_of(0) == layout.line_of(1)

    def test_no_cross_segment_candidates(self):
        """Merged signatures stay additive: loads only see same-segment
        stores, so candidate sets never mix segments."""
        segments = make_segments(2)
        merged = merge_tests(segments)
        cands = candidate_sources(merged)
        for load_uid, sources in cands.items():
            parity = merged.op(load_uid).addr % 2
            for src in sources:
                if isinstance(src, int):
                    assert merged.op(src).addr % 2 == parity

    def test_signature_growth_is_additive(self):
        segments = make_segments(2)
        merged = merge_tests(segments)
        seg_words = [SignatureCodec(s, 32).total_words for s in segments]
        merged_words = SignatureCodec(merged, 32).total_words
        assert merged_words <= sum(seg_words) + merged.num_threads

    def test_name_defaults_to_joined_segments(self):
        merged = merge_tests(make_segments(2))
        assert "+" in merged.name

    def test_empty_merge_rejected(self):
        with pytest.raises(ProgramError):
            merge_tests([])

    def test_thread_count_mismatch_rejected(self):
        a = generate(TestConfig(threads=2, ops_per_thread=5, addresses=4, seed=1))
        b = generate(TestConfig(threads=3, ops_per_thread=5, addresses=4, seed=2))
        with pytest.raises(ProgramError):
            merge_tests([a, b])
