"""Tests for violation minimization."""

import pytest

from repro.checker.minimize import minimize_violation
from repro.errors import CheckerError
from repro.graph import GraphBuilder, topological_sort
from repro.mcm import TSO
from repro.sim.detailed import DetailedExecutor
from repro.sim.faults import Bug, FaultConfig
from repro.testgen import TestConfig, generate, generate_suite
from repro.testgen.litmus import corr, message_passing


class TestLitmusKernels:
    def test_corr_outcome_minimizes_to_itself(self):
        lt = corr()
        result = minimize_violation(lt.program, TSO, lt.interesting_rf)
        assert result.num_ops <= lt.program.num_ops
        assert result.cycle[0] == result.cycle[-1]

    def test_mp_outcome_kernel(self):
        lt = message_passing()
        result = minimize_violation(lt.program, TSO, lt.interesting_rf)
        # the MP violation needs both threads
        assert result.program.num_threads == 2
        # the reduced graph is still cyclic under TSO
        builder = GraphBuilder(result.program, TSO, ws_mode="static")
        graph = builder.build(result.rf)
        assert topological_sort(range(result.num_ops), graph.adjacency) is None

    def test_non_violating_execution_rejected(self):
        lt = corr()
        st = lt.program.threads[0].ops[0].uid
        benign = {uid: st for uid in lt.interesting_rf}   # both read the store
        with pytest.raises(CheckerError):
            minimize_violation(lt.program, TSO, benign)


class TestEmbeddedViolation:
    def _embedded_case(self):
        """A CoRR violation planted inside a larger random test."""
        cfg = TestConfig(isa="x86", threads=3, ops_per_thread=20,
                         addresses=6, seed=44)
        program = generate(cfg)
        # fabricate a violating rf: find a thread with two same-address
        # loads and a cross-thread store to that address
        from repro.instrument import candidate_sources
        from repro.isa import INIT

        cands = candidate_sources(program)
        rf = {uid: sources[0] for uid, sources in cands.items()}
        for tp in program.threads:
            loads_by_addr = {}
            for op in tp.ops:
                if op.is_load:
                    loads_by_addr.setdefault(op.addr, []).append(op)
            for addr, loads in loads_by_addr.items():
                if len(loads) < 2:
                    continue
                remote = [s for s in cands[loads[0].uid]
                          if isinstance(s, int)
                          and program.op(s).thread != tp.thread]
                first_cand = cands[loads[1].uid][0]
                if remote and (first_cand is INIT or first_cand == INIT):
                    rf[loads[0].uid] = remote[0]   # new value first...
                    rf[loads[1].uid] = INIT        # ...then the old one
                    return program, rf
        pytest.skip("no embeddable CoRR pattern in this seed")

    def test_minimization_shrinks_substantially(self):
        program, rf = self._embedded_case()
        result = minimize_violation(program, TSO, rf)
        assert result.num_ops < program.num_ops / 3
        assert result.cycle

    def test_uid_map_traces_back(self):
        program, rf = self._embedded_case()
        result = minimize_violation(program, TSO, rf)
        for old_uid, new_uid in result.uid_map.items():
            old_op, new_op = program.op(old_uid), result.program.op(new_uid)
            assert old_op.kind == new_op.kind


class TestOnDetectedBugs:
    def test_minimizes_real_detected_violation(self):
        """End to end: detect a bug-2 violation on the MESI simulator and
        shrink it to a small kernel with the cycle preserved."""
        cfg = TestConfig(isa="x86", threads=7, ops_per_thread=200,
                         addresses=32, words_per_line=16, seed=23)
        for i, program in enumerate(generate_suite(cfg, 3)):
            builder = GraphBuilder(program, TSO, ws_mode="observed")
            ex = DetailedExecutor(program, seed=100 + i, layout=cfg.layout,
                                  faults=FaultConfig(bug=Bug.LOAD_LOAD_LSQ,
                                                     l1_lines=4))
            for e in ex.run(128):
                if e.crashed:
                    continue
                graph = builder.build(e.rf, e.ws)
                if topological_sort(range(program.num_ops),
                                    graph.adjacency) is not None:
                    continue
                result = minimize_violation(program, TSO, e.rf, e.ws, graph)
                assert result.num_ops <= 20
                assert result.cycle
                return
        pytest.skip("bug did not manifest in this budget")
