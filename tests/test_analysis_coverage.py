"""Unit tests for interleaving-coverage analysis."""

import pytest

from repro.analysis import coverage_summary, discovery_rate, saturation_curve
from repro.harness import Campaign
from repro.testgen import TestConfig


class TestSaturationCurve:
    def test_monotone_nondecreasing(self):
        curve = saturation_curve(["a", "b", "a", "c", "b"])
        assert curve == [1, 2, 2, 3, 3]

    def test_empty(self):
        assert saturation_curve([]) == []

    def test_all_unique(self):
        assert saturation_curve(range(5)) == [1, 2, 3, 4, 5]


class TestDiscoveryRate:
    def test_zero_when_saturated(self):
        curve = [1, 2, 3, 3, 3, 3, 3]
        assert discovery_rate(curve, window=4) == 0.0

    def test_one_when_all_new(self):
        curve = list(range(1, 11))
        assert discovery_rate(curve, window=5) == pytest.approx(1.0)

    def test_short_inputs(self):
        assert discovery_rate([], 10) == 0.0
        assert discovery_rate([3], 10) == 3.0


class TestCoverageSummary:
    def _result(self, iterations=400):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=9)
        campaign = Campaign(config=cfg, seed=2)
        return campaign.run(iterations)

    def test_summary_fields(self):
        result = self._result()
        summary = coverage_summary(result)
        assert summary.iterations == 400
        assert summary.unique == result.unique_signatures
        assert 0 < summary.unique_fraction <= 1
        assert 0 <= summary.space_fraction <= 1
        assert 0 <= summary.next_new_probability <= 1

    def test_singletons_counted(self):
        result = self._result()
        summary = coverage_summary(result)
        expected = sum(1 for c in result.signature_counts.values() if c == 1)
        assert summary.singleton_count == expected

    def test_low_diversity_test_saturates(self):
        """A near-deterministic test's campaign saturates quickly."""
        cfg = TestConfig(isa="arm", threads=1, ops_per_thread=10,
                         addresses=4, seed=1)
        campaign = Campaign(config=cfg, seed=1)
        summary = coverage_summary(campaign.run(300))
        assert summary.unique == 1           # single thread: one outcome
        assert summary.saturated

    def test_diverse_test_not_saturated_early(self):
        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=50,
                         addresses=64, seed=9)
        campaign = Campaign(config=cfg, seed=2)
        summary = coverage_summary(campaign.run(150))
        assert not summary.saturated

    def test_saturation_matches_paper_trend(self):
        """Unique fraction falls as iterations grow (Section 6.1)."""
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=50,
                         addresses=32, seed=9)
        short = coverage_summary(Campaign(config=cfg, seed=2).run(100))
        long = coverage_summary(Campaign(config=cfg, seed=2).run(800))
        assert long.unique_fraction <= short.unique_fraction
