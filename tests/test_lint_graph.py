"""Constraint-graph lints: po skeleton, candidates, closure (MTC03x)."""

from repro.instrument import candidate_sources
from repro.isa import TestProgram, load, store
from repro.lint.graph_lints import (
    canonical_assignment,
    lint_candidates_against_po,
    lint_canonical_closure,
    lint_po_skeleton,
)
from repro.mcm import SC, TSO, WEAK, get_model
from repro.mcm.model import MemoryModel


class _SelfLoopModel(MemoryModel):
    """A deliberately broken model emitting a self edge."""

    name = "selfloop"

    def orders(self, earlier, later):
        return False

    def ppo_edges(self, thread_program):
        for op in thread_program.ops:
            yield op.uid, op.uid


class TestPoSkeleton:
    def test_real_models_are_clean(self, figure3_program):
        for model in (SC, TSO, WEAK):
            assert not lint_po_skeleton(figure3_program, model)

    def test_self_loop_is_mtc030(self, figure3_program):
        findings = lint_po_skeleton(figure3_program, _SelfLoopModel())
        assert findings
        assert all(f.rule == "MTC030" for f in findings)


class TestCandidatesAgainstPo:
    def test_healthy_candidates_are_clean(self, figure3_program):
        candidates = candidate_sources(figure3_program)
        assert not lint_candidates_against_po(figure3_program, candidates)

    def test_later_local_store_is_mtc032(self, figure3_program):
        candidates = candidate_sources(figure3_program)
        # t0: op1 is a load of addr 0, op3 a *later* local store to it
        candidates[1].append(3)
        findings = lint_candidates_against_po(figure3_program, candidates)
        assert [f for f in findings if f.rule == "MTC032"
                and "after" in f.message]

    def test_stale_local_store_is_mtc032(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), store(0, 1, 0, 2), load(0, 2, 0)],
             [load(1, 0, 0)]], num_addresses=1)
        candidates = candidate_sources(program)
        # the load's only legal local source is op1; op0 is stale
        candidates[2].append(0)
        findings = lint_candidates_against_po(program, candidates)
        assert [f for f in findings if f.rule == "MTC032"
                and "stale" in f.message]


class TestCanonicalClosure:
    def test_canonical_assignment_takes_local_sources(self, figure3_program):
        candidates = candidate_sources(figure3_program)
        rf = canonical_assignment(candidates)
        for uid, source in rf.items():
            assert source == candidates[uid][0]

    def test_figure3_is_acyclic_under_all_models(self, figure3_program):
        candidates = candidate_sources(figure3_program)
        for name in ("sc", "tso", "weak"):
            assert not lint_canonical_closure(
                figure3_program, get_model(name), candidates)

    def test_store_buffering_fires_under_sc(self):
        # the classic SB pattern: canonical (all-INIT loads) execution is
        # exactly the outcome SC forbids
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 1)],
             [store(1, 0, 1, 2), load(1, 1, 0)]], num_addresses=2)
        candidates = candidate_sources(program)
        findings = lint_canonical_closure(program, SC, candidates)
        assert [f.rule for f in findings] == ["MTC033"]
        # ... and is perfectly legal under TSO
        assert not lint_canonical_closure(program, TSO, candidates)
