"""Fleet telemetry integration: event determinism, heartbeats, traces.

The repro.obs v2 acceptance invariant: the run-scope slice of the event
log is a pure function of the campaign — a serial run and a ``--jobs 4``
fleet run must produce the same multiset of run-scope payloads once the
shard logs merge (timestamps and sequence numbers excluded).  Host-scope
events (shard lifecycle, heartbeats, merges) legitimately differ.
"""

from repro import obs
from repro.fleet import run_campaign_fleet
from repro.harness import Campaign, check_campaign_result
from repro.obs.traceviz import build_trace, trace_span_names, validate_trace
from repro.testgen import TestConfig

CFG = TestConfig(threads=2, ops_per_thread=10, addresses=8, seed=7)


def _serial_events(iterations=120, block=30):
    with obs.enabled_obs() as handle:
        result = Campaign(config=CFG, seed=11).run(iterations, block=block)
        check_campaign_result(result)
        return handle.events


def _fleet_events(jobs, iterations=120, block=30, on_beat=None):
    with obs.enabled_obs() as handle:
        merged = run_campaign_fleet(config=CFG, iterations=iterations,
                                    jobs=jobs, seed=11, block=block,
                                    on_beat=on_beat)
        check_campaign_result(merged)
        return handle.events


class TestRunScopeDeterminism:
    """Acceptance: serial and --jobs 4 merge to the same run multiset."""

    def test_four_workers_match_serial_event_multiset(self):
        serial = _serial_events()
        fleet = _fleet_events(jobs=4)
        assert fleet.multiset("run") == serial.multiset("run")
        # the invariant is non-vacuous: plan, per-block, result and
        # checker events are all present
        kinds = {kind for (kind, _payload) in serial.multiset("run")}
        assert {"campaign.plan", "block.done",
                "campaign.result"} <= kinds

    def test_host_scope_events_exist_only_in_the_fleet_run(self):
        serial = _serial_events()
        fleet = _fleet_events(jobs=2)
        assert not serial.multiset("host")
        host_kinds = {kind for (kind, _p) in fleet.multiset("host")}
        assert {"fleet.plan", "shard.launch", "shard.done",
                "fleet.merge"} <= host_kinds

    def test_worker_count_does_not_change_the_run_multiset(self):
        assert (_fleet_events(jobs=2).multiset("run")
                == _fleet_events(jobs=3).multiset("run"))


class TestHeartbeats:
    def test_heartbeats_reach_events_and_callback(self):
        beats = []
        with obs.enabled_obs() as handle:
            run_campaign_fleet(config=CFG, iterations=60, jobs=2, seed=11,
                               block=15,
                               on_beat=lambda snap: beats.append(snap))
            heartbeats = [e for e in handle.events.events()
                          if e.kind == "fleet.heartbeat"]
            assert heartbeats            # final block always reports
            assert beats
            # every heartbeat is well-formed and within the shard budget
            for event in heartbeats:
                assert 0 <= event.data["iterations_done"] \
                       <= event.data["iterations_total"]
            # the last snapshot saw the fleet finish
            assert beats[-1].iterations_done == beats[-1].iterations_total \
                   == 60
            assert handle.metrics.get("fleet.heartbeats").value \
                   == len(heartbeats)
            gauge = handle.metrics.get("fleet.progress.iterations_done")
            assert gauge.value == 60


class TestTraceExport:
    def test_fleet_run_produces_a_valid_combined_trace(self):
        with obs.enabled_obs() as handle:
            run_campaign_fleet(config=CFG, iterations=60, jobs=2, seed=11,
                               block=15)
            report = handle.report(meta={"command": "test"})
            trace = build_trace(report=report,
                                events=handle.events.events())
        validate_trace(trace)
        names = trace_span_names(trace)
        assert obs.span_names(report) == names
        assert {"fleet.shard", "fleet.merge"} <= names
        shard_slices = [e for e in trace["traceEvents"]
                        if e.get("cat") == "shard"]
        assert {s["args"]["outcome"] for s in shard_slices} == {"ok"}
        assert len(shard_slices) == 2
