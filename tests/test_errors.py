"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CheckerError,
    ExecutionError,
    InstrumentationError,
    ProgramError,
    ProtocolCrash,
    ReproError,
    SignatureError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ProgramError, InstrumentationError, SignatureError,
        ExecutionError, CheckerError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_protocol_crash_is_execution_error(self):
        assert issubclass(ProtocolCrash, ExecutionError)

    def test_protocol_crash_carries_optional_cycle(self):
        crash = ProtocolCrash("invalid transition", cycle=(1, 2, 1))
        assert crash.cycle == (1, 2, 1)
        assert "invalid transition" in str(crash)

    def test_protocol_crash_default_cycle(self):
        assert ProtocolCrash("deadlock").cycle is None

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SignatureError("boom")
