"""Tests for daemon-side campaign sessions (repro.serve.session)."""

import pytest

from repro.graph import GraphBuilder
from repro.harness import Campaign, check_campaign_result
from repro.io import signature_to_entry
from repro.mcm import SC
from repro.serve.dedup import SignatureDedupStore
from repro.serve.session import CampaignSession
from repro.testgen import TestConfig


@pytest.fixture
def campaign_result():
    config = TestConfig(isa="arm", threads=2, ops_per_thread=18,
                        addresses=8, seed=13)
    campaign = Campaign(config=config, seed=6)
    return campaign.run(250)


def _entries(result):
    return [signature_to_entry(sig, count)
            for sig, count in sorted(result.signature_counts.items())]


def _batch_summary(result, model=None):
    outcome = check_campaign_result(result, model, baseline=False,
                                    pipeline="delta")
    return outcome.collective.summary()


class TestIngest:
    def test_multiset_accounting_is_exact(self, campaign_result):
        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore())
        entries = _entries(campaign_result)
        ack = session.ingest(entries, seq=1)
        assert ack.novel == len(entries)
        assert ack.repeats == 0
        assert session.result.signature_counts == \
            campaign_result.signature_counts
        assert session.signatures_ingested == campaign_result.iterations

    def test_repeat_batch_is_all_dedup_hits(self, campaign_result):
        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore())
        entries = _entries(campaign_result)
        session.ingest(entries, seq=1)
        ack = session.ingest(entries, seq=2)
        assert ack.novel == 0
        assert ack.repeats == len(entries)
        # counts doubled: dedup answers verdicts, never occurrence math
        assert session.signatures_ingested == 2 * campaign_result.iterations

    def test_dedup_shared_across_sessions(self, campaign_result):
        store = SignatureDedupStore()
        first = CampaignSession(1, campaign_result.program, 32, store)
        first.ingest(_entries(campaign_result), seq=1)
        second = CampaignSession(2, campaign_result.program, 32, store)
        ack = second.ingest(_entries(campaign_result), seq=1)
        assert ack.novel == 0
        assert ack.repeats == len(_entries(campaign_result))


class TestFinalize:
    def test_report_is_byte_identical_to_batch(self, campaign_result):
        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore())
        entries = _entries(campaign_result)
        # interleave: small out-of-order batches
        for start in range(0, len(entries), 5):
            session.ingest(entries[start:start + 5], seq=start)
        report = session.finalize()
        assert report.summary == _batch_summary(campaign_result)
        assert report.unique_signatures == campaign_result.unique_signatures

    def test_all_dedup_hit_session_still_reports_full_summary(
            self, campaign_result):
        """The finalize replay must cover dedup hits whose live check
        was answered by another session's work."""
        store = SignatureDedupStore()
        first = CampaignSession(1, campaign_result.program, 32, store)
        first.ingest(_entries(campaign_result), seq=1)
        second = CampaignSession(2, campaign_result.program, 32, store)
        second.ingest(_entries(campaign_result), seq=1)
        report = second.finalize()
        assert report.dedup_hits == len(_entries(campaign_result))
        assert report.summary == _batch_summary(campaign_result)

    def test_empty_session_reports_cleanly(self, campaign_result):
        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore())
        report = session.finalize(drained=True)
        assert report.unique_signatures == 0
        assert report.signatures == 0
        assert report.drained is True

    def test_violations_survive_the_replay(self, campaign_result):
        """Weak-hardware signatures checked under SC: the session's ack
        violations and final report must agree with the batch path."""
        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore(), model=SC)
        ack = session.ingest(_entries(campaign_result), seq=1)
        report = session.finalize()
        batch = _batch_summary(campaign_result, SC)
        assert report.summary == batch
        assert report.violations == len(batch["violations"])
        assert ack.violations == report.violations
        assert report.violations > 0, "seed produced no SC violations"


class TestRemoteOffload:
    def test_remote_dump_round_trips_through_batch_check(
            self, campaign_result):
        from repro.io import load_campaign

        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore())
        dump = session.remote_dump(_entries(campaign_result))
        loaded = load_campaign(dump)
        assert loaded.signature_counts == campaign_result.signature_counts
        assert _batch_summary(loaded) == _batch_summary(campaign_result)

    def test_ingest_checked_folds_remote_verdicts(self, campaign_result):
        from repro.graph import topological_sort
        from repro.io import _signature_to_list

        builder = GraphBuilder(campaign_result.program, SC,
                               ws_mode="static")
        codec = campaign_result.codec
        num_ops = campaign_result.program.num_ops
        violating = []
        for sig in campaign_result.signature_counts:
            graph = builder.build(codec.decode(sig))
            if topological_sort(range(num_ops), graph.adjacency) is None:
                violating.append(_signature_to_list(sig))
        session = CampaignSession(1, campaign_result.program, 32,
                                  SignatureDedupStore(), model=SC)
        ack = session.ingest_checked(_entries(campaign_result), violating,
                                     seq=1)
        assert ack.violations == len(violating)
        report = session.finalize()
        assert report.summary == _batch_summary(campaign_result, SC)
