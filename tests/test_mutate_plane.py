"""Unit tests for the fault-injection plane (triggers + FaultPlane)."""

import pytest

from repro.errors import ReproError
from repro.mutate import FaultPlane, Mutation, Trigger


def make_mutation(trigger, points=("point.a",), name="unit-test"):
    return Mutation(name=name, title="unit fixture", provenance="tests",
                    executor="operational", points=points, trigger=trigger)


class TestTrigger:
    def test_always_fires_unconditionally(self):
        t = Trigger.always()
        assert t.mode == "always" and t.describe() == "always"

    def test_prob_validates_range(self):
        assert Trigger.prob(0.5).describe() == "p=0.5"
        with pytest.raises(ReproError):
            Trigger.prob(0.0)
        with pytest.raises(ReproError):
            Trigger.prob(1.5)

    def test_nth_validates_period(self):
        assert Trigger.nth(3).describe() == "every 3th"
        with pytest.raises(ReproError):
            Trigger.nth(0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            Trigger(mode="sometimes")


class TestFaultPlane:
    def test_arms_only_registered_points(self):
        plane = FaultPlane(make_mutation(Trigger.always(), ("a", "b")))
        assert plane.arms("a") and plane.arms("b")
        assert not plane.arms("c")

    def test_unarmed_point_never_fires_or_counts(self):
        plane = FaultPlane(make_mutation(Trigger.always(), ("a",)))
        assert not plane.fires("other")
        assert plane.opportunities["other"] == 0

    def test_always_trigger_fires_every_opportunity(self):
        plane = FaultPlane(make_mutation(Trigger.always()))
        assert all(plane.fires("point.a") for _ in range(10))
        assert plane.opportunities["point.a"] == 10
        assert plane.fired["point.a"] == 10
        assert plane.total_fired() == 10

    def test_nth_trigger_fires_periodically(self):
        plane = FaultPlane(make_mutation(Trigger.nth(3)))
        hits = [plane.fires("point.a") for _ in range(9)]
        assert hits == [False, False, True] * 3

    def test_prob_trigger_is_seed_deterministic(self):
        draws = []
        for _ in range(2):
            plane = FaultPlane(make_mutation(Trigger.prob(0.5)), seed=7)
            draws.append([plane.fires("point.a") for _ in range(64)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_different_seeds_give_different_streams(self):
        a = FaultPlane(make_mutation(Trigger.prob(0.5)), seed=1)
        b = FaultPlane(make_mutation(Trigger.prob(0.5)), seed=2)
        assert [a.fires("point.a") for _ in range(64)] != \
               [b.fires("point.a") for _ in range(64)]

    def test_different_mutation_names_give_different_streams(self):
        a = FaultPlane(make_mutation(Trigger.prob(0.5), name="m-a"), seed=1)
        b = FaultPlane(make_mutation(Trigger.prob(0.5), name="m-b"), seed=1)
        assert [a.fires("point.a") for _ in range(64)] != \
               [b.fires("point.a") for _ in range(64)]

    def test_reseed_restores_fresh_state(self):
        plane = FaultPlane(make_mutation(Trigger.prob(0.5)), seed=3)
        first = [plane.fires("point.a") for _ in range(32)]
        picks = [plane.pick_index(5) for _ in range(8)]
        plane.reseed(3)
        assert plane.opportunities["point.a"] == 0
        assert plane.total_fired() == 0
        assert [plane.fires("point.a") for _ in range(32)] == first
        assert [plane.pick_index(5) for _ in range(8)] == picks

    def test_pick_index_stays_in_range(self):
        plane = FaultPlane(make_mutation(Trigger.always()))
        assert all(0 <= plane.pick_index(4) < 4 for _ in range(100))
