"""Unit tests for deterministic seed-block sharding."""

import pytest

from repro.fleet.sharding import (
    DEFAULT_BLOCK,
    OS_SEED_SALT,
    derive_os_seed,
    derive_seed,
    partition_blocks,
    plan_blocks,
    shard_iterations,
)
from repro.harness import Campaign
from repro.testgen import TestConfig


class TestDeriveSeed:
    def test_block_zero_is_the_base_seed(self):
        for base in (0, 1, 7, 12345, 2**63):
            assert derive_seed(base, 0) == base

    def test_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_distinct_across_blocks(self):
        seeds = {derive_seed(42, block) for block in range(200)}
        assert len(seeds) == 200

    def test_distinct_across_nearby_bases(self):
        # the splitmix64 finalizer decorrelates base seeds differing by 1
        assert derive_seed(42, 1) != derive_seed(43, 1)

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)

    def test_os_seed_keeps_legacy_salt(self):
        # the serial runner historically seeded OS interference at seed^0x05
        assert derive_os_seed(9) == 9 ^ OS_SEED_SALT
        assert derive_os_seed(9, 2) == derive_seed(9, 2) ^ OS_SEED_SALT


class TestPlanBlocks:
    def test_exact_multiple(self):
        assert plan_blocks(120, block=40) == [(0, 40), (1, 40), (2, 40)]

    def test_trailing_partial_block(self):
        assert plan_blocks(100, block=40) == [(0, 40), (1, 40), (2, 20)]

    def test_zero_iterations(self):
        assert plan_blocks(0) == []

    def test_default_block_size(self):
        blocks = plan_blocks(DEFAULT_BLOCK + 1)
        assert blocks == [(0, DEFAULT_BLOCK), (1, 1)]

    def test_small_campaigns_stay_single_block(self):
        # every pre-fleet campaign (<= DEFAULT_BLOCK iterations) keeps
        # its single RNG stream seeded at the base seed
        assert plan_blocks(300) == [(0, 300)]

    def test_counts_always_sum_to_iterations(self):
        for n in (1, 39, 40, 41, 1000):
            assert sum(c for _, c in plan_blocks(n, block=40)) == n

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_blocks(-1)
        with pytest.raises(ValueError):
            plan_blocks(10, block=0)


class TestPartitionBlocks:
    def test_striped_dealing(self):
        blocks = plan_blocks(200, block=40)     # 5 blocks
        shards = partition_blocks(blocks, 2)
        assert shards == [((0, 40), (2, 40), (4, 40)), ((1, 40), (3, 40))]

    def test_every_block_assigned_exactly_once(self):
        blocks = plan_blocks(500, block=30)
        shards = partition_blocks(blocks, 4)
        dealt = [block for shard in shards for block in shard]
        assert sorted(dealt) == blocks

    def test_independent_of_worker_count(self):
        # the union of shard blocks is the same plan for any jobs value
        blocks = plan_blocks(333, block=50)
        for jobs in (1, 2, 3, 7):
            dealt = [b for s in partition_blocks(blocks, jobs) for b in s]
            assert sorted(dealt) == blocks

    def test_empty_shards_dropped(self):
        shards = partition_blocks(plan_blocks(60, block=40), 8)
        assert len(shards) == 2
        assert all(shard for shard in shards)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            partition_blocks([(0, 10)], 0)

    def test_shard_iterations(self):
        assert shard_iterations(((0, 40), (2, 40), (3, 7))) == 87


class TestCampaignSeedBlocks:
    """The serial runner itself executes the block plan."""

    CFG = TestConfig(threads=2, ops_per_thread=10, addresses=8, seed=5)

    def test_multiset_reproducible_for_same_plan(self):
        # the multiset is a pure function of (seed, iterations, block):
        # re-running the same plan reproduces it exactly
        a = Campaign(config=self.CFG, seed=9).run(120, block=40)
        b = Campaign(config=self.CFG, seed=9).run(120, block=40)
        assert a.signature_counts == b.signature_counts

    def test_run_blocks_parts_equal_whole(self):
        whole = Campaign(config=self.CFG, seed=9).run(120, block=40)
        parts = Campaign(config=self.CFG, seed=9)
        merged_counts = sum(
            (parts.run_blocks([(i, 40)]).signature_counts for i in range(3)),
            start=type(whole.signature_counts)())
        assert merged_counts == whole.signature_counts

    def test_default_run_is_block_zero(self):
        # run(n) for n <= DEFAULT_BLOCK is exactly run_blocks([(0, n)])
        a = Campaign(config=self.CFG, seed=9).run(100)
        b = Campaign(config=self.CFG, seed=9).run_blocks([(0, 100)])
        assert a.signature_counts == b.signature_counts
