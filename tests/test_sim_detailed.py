"""Tests for the detailed MESI executor (the gem5 stand-in)."""

import pytest

from repro.errors import ExecutionError
from repro.graph import GraphBuilder, topological_sort
from repro.mcm import TSO, WEAK
from repro.sim.detailed import DetailedExecutor
from repro.sim.faults import Bug, FaultConfig
from repro.testgen import TestConfig, generate
from repro.testgen.litmus import all_litmus_tests, store_buffering


class TestTsoCompliance:
    def test_forbidden_litmus_outcomes_never_appear(self):
        for lt in all_litmus_tests():
            if lt.allowed["tso"]:
                continue
            ex = DetailedExecutor(lt.program, seed=7)
            for e in ex.run(250):
                assert not e.crashed
                hit = all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
                if hit and lt.interesting_ws is not None:
                    hit = all(e.ws.get(a) == c for a, c in lt.interesting_ws.items())
                assert not hit, lt.name

    def test_store_buffering_outcome_appears(self):
        lt = store_buffering()
        ex = DetailedExecutor(lt.program, seed=7)
        seen = any(
            all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
            for e in ex.run(400))
        assert seen

    def test_random_test_graphs_acyclic_bug_free(self):
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=30, addresses=8,
                         words_per_line=4, seed=31)
        p = generate(cfg)
        builder = GraphBuilder(p, TSO, ws_mode="observed")
        ex = DetailedExecutor(p, seed=2, layout=cfg.layout,
                              faults=FaultConfig(l1_lines=4))
        for e in ex.run(60):
            assert not e.crashed
            g = builder.build(e.rf, e.ws)
            assert topological_sort(range(p.num_ops), g.adjacency) is not None


class TestInterface:
    def test_rf_and_ws_cover_program(self, small_program):
        ex = DetailedExecutor(small_program, seed=1)
        e = ex.run_one()
        assert set(e.rf) == {op.uid for op in small_program.loads}
        for addr in range(small_program.num_addresses):
            assert sorted(e.ws[addr]) == sorted(
                s.uid for s in small_program.stores_to(addr))

    def test_too_many_threads_rejected(self):
        p = generate(TestConfig(threads=7, ops_per_thread=5, addresses=8, seed=1))
        from repro.sim.platform import X86_DESKTOP

        with pytest.raises(ExecutionError):
            DetailedExecutor(p, platform=X86_DESKTOP)   # 4 cores < 7 threads

    def test_non_tso_model_rejected(self, small_program):
        with pytest.raises(ExecutionError):
            DetailedExecutor(small_program, WEAK)

    def test_cycle_accounting(self, small_program):
        e = DetailedExecutor(small_program, seed=1).run_one()
        assert e.counters.base_cycles > 0
        assert e.counters.test_accesses > 0

    def test_same_thread_ws_in_program_order(self, small_program):
        ex = DetailedExecutor(small_program, seed=4)
        for e in ex.run(20):
            for chain in e.ws.values():
                per_thread = {}
                for uid in chain:
                    t = small_program.op(uid).thread
                    assert per_thread.get(t, -1) < uid
                    per_thread[t] = uid


class TestBugInjection:
    def test_bug3_crashes_under_eviction_pressure(self):
        cfg = TestConfig(isa="x86", threads=7, ops_per_thread=100, addresses=64,
                         words_per_line=4, seed=29)
        p = generate(cfg)
        ex = DetailedExecutor(p, seed=3, layout=cfg.layout,
                              faults=FaultConfig(bug=Bug.WRITEBACK_RACE, l1_lines=4))
        crashes = sum(1 for e in ex.run(12) if e.crashed)
        assert crashes == 12    # paper: all bug-3 runs crash

    def test_bug2_produces_loadload_violations(self):
        """Across a small suite, bug 2 must yield at least one violating
        unique execution (paper Table 3: rare but detectable)."""
        cfg = TestConfig(isa="x86", threads=7, ops_per_thread=200, addresses=32,
                         words_per_line=16, seed=23)
        found = 0
        for i, p in enumerate([generate(cfg.with_seed(23 * 7919 + k))
                               for k in range(3)]):
            builder = GraphBuilder(p, TSO, ws_mode="observed")
            ex = DetailedExecutor(p, seed=100 + i, layout=cfg.layout,
                                  faults=FaultConfig(bug=Bug.LOAD_LOAD_LSQ,
                                                     l1_lines=4))
            seen = set()
            for e in ex.run(128):
                if e.crashed or e.rf_key() in seen:
                    continue
                seen.add(e.rf_key())
                g = builder.build(e.rf, e.ws)
                if topological_sort(range(p.num_ops), g.adjacency) is None:
                    found += 1
        assert found >= 1

    def test_bug_free_variant_of_bug2_config_is_clean(self):
        cfg = TestConfig(isa="x86", threads=7, ops_per_thread=100, addresses=32,
                         words_per_line=16, seed=23)
        p = generate(cfg)
        builder = GraphBuilder(p, TSO, ws_mode="observed")
        ex = DetailedExecutor(p, seed=100, layout=cfg.layout,
                              faults=FaultConfig(l1_lines=4))
        for e in ex.run(40):
            assert not e.crashed
            g = builder.build(e.rf, e.ws)
            assert topological_sort(range(p.num_ops), g.adjacency) is not None

    def test_crashed_execution_shape(self):
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=100, addresses=64,
                         words_per_line=4, seed=29)
        p = generate(cfg)
        ex = DetailedExecutor(p, seed=3, layout=cfg.layout,
                              faults=FaultConfig(bug=Bug.WRITEBACK_RACE, l1_lines=2))
        e = next(iter(ex.run(6)))
        # crashed executions report the crash and carry no usable rf
        if e.crashed:
            assert e.rf == {} and e.ws == {}
