"""Instrumentation verifier: abstract chain interpretation (MTC02x)."""

import re

from repro.instrument import SignatureCodec, emit_listing
from repro.lint.verifier import parse_listing, verify_instrumentation


class TestParseListing:
    def test_round_trips_figure3_structure(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        threads = parse_listing(emit_listing(figure3_program, codec))
        assert len(threads) == figure3_program.num_threads
        for tc, tp in zip(threads, figure3_program.threads):
            assert len(tc.chains) == len(tp.loads)
            assert tc.num_words == codec.tables[tc.thread].num_words
            assert all(chain.has_assert for chain in tc.chains)

    def test_arm_values_match_candidate_count(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        threads = parse_listing(emit_listing(figure3_program, codec))
        for tc, tp in zip(threads, figure3_program.threads):
            for chain, op in zip(tc.chains, tp.loads):
                assert len(chain.arms) == len(codec.candidates[op.uid])


class TestVerify:
    def test_healthy_program_verifies_exhaustively(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        findings, checked, exhaustive = verify_instrumentation(
            figure3_program, codec)
        assert not findings
        assert exhaustive
        assert checked == codec.cardinality

    def test_large_program_falls_back_to_sampling(self, small_program,
                                                  small_codec):
        findings, checked, exhaustive = verify_instrumentation(
            small_program, small_codec, exhaustive_limit=16, samples=10)
        assert not [f for f in findings if f.rule == "MTC020"]
        assert not exhaustive
        assert checked == 10

    def test_sampling_is_seed_deterministic(self, small_program,
                                            small_codec):
        runs = [verify_instrumentation(small_program, small_codec,
                                       exhaustive_limit=1, samples=8,
                                       seed=42)[1] for _ in range(2)]
        assert runs[0] == runs[1]

    def test_tampered_weight_is_mtc020(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        listing = emit_listing(figure3_program, codec)
        tampered = re.sub(r"\+= 2\b", "+= 9", listing, count=1)
        assert tampered != listing
        findings, _, _ = verify_instrumentation(
            figure3_program, codec, listing=tampered)
        assert [f for f in findings if f.rule == "MTC020"]

    def test_missing_arm_is_mtc021(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        lines = emit_listing(figure3_program, codec).splitlines()
        # drop the first compare arm; the next line's 'else if' keeps the
        # chain parseable but the dropped value now falls to the assert
        for i, line in enumerate(lines):
            if re.match(r"^    if \(value==", line):
                del lines[i]
                lines[i] = lines[i].replace("else if", "if", 1)
                break
        findings, _, _ = verify_instrumentation(
            figure3_program, codec, listing="\n".join(lines))
        assert [f for f in findings if f.rule == "MTC021"]

    def test_duplicate_arm_is_mtc022(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        lines = emit_listing(figure3_program, codec).splitlines()
        for i, line in enumerate(lines):
            m = re.match(r"^    if \(value==(\d+)\)", line)
            if m:
                dup = line.replace("if (value==%s)" % m.group(1),
                                   "else if (value==%s)" % m.group(1))
                lines.insert(i + 1, dup)
                break
        findings, _, _ = verify_instrumentation(
            figure3_program, codec, listing="\n".join(lines))
        assert [f for f in findings if f.rule == "MTC022"]

    def test_wrong_thread_count_is_mtc020(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        listing = emit_listing(figure3_program, codec)
        truncated = listing.split("thread 2:")[0]
        findings, checked, _ = verify_instrumentation(
            figure3_program, codec, listing=truncated)
        assert [f for f in findings if f.rule == "MTC020"]
        assert checked == 0

    def test_desync_against_foreign_codec_listing(self, figure3_program):
        """A listing emitted for a different codec (here: a 2-bit register
        whose word splits differ) must not verify against this codec."""
        codec = SignatureCodec(figure3_program, 32)
        foreign = SignatureCodec(figure3_program, 2)
        assert foreign.total_words != codec.total_words
        findings, _, _ = verify_instrumentation(
            figure3_program, codec,
            listing=emit_listing(figure3_program, foreign))
        assert [f for f in findings if f.rule == "MTC020"]

    def test_mismatch_reports_are_capped(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        listing = emit_listing(figure3_program, codec)
        tampered = re.sub(r"\+= (\d+)\b",
                          lambda m: "+= %d" % (int(m.group(1)) + 100),
                          listing)
        findings, _, _ = verify_instrumentation(
            figure3_program, codec, listing=tampered, max_reports=3)
        mismatches = [f for f in findings if f.rule == "MTC020"]
        assert len(mismatches) <= 4     # 3 + the suppression summary
        assert any("suppressed" in f.message for f in mismatches)
