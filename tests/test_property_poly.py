"""Property-based cross-family differential: poly == delta, always.

For any generated program, execution sample, register width and memory
model — including checking weak-hardware executions against stronger
models, the violation-bearing half of the space — the frontier-closure
pipeline must agree with the delta pipeline on the violation digest:
same graph count, same violating indices, signature by signature.  Both
executors are covered: the operational reference and the detailed MESI
simulator (whose clean runs are TSO executions).

The suite also proves the harness *detects* divergence: with one rule
family surgically removed from the verifier, hypothesis must find a
disagreeing input and shrink it to a minimal single-signature block.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checker import PolyChecker, PolySignatureSource, PolyVerifier
from repro.checker.poly import violation_digest
from repro.instrument import SignatureCodec
from repro.mcm import SC, TSO, WEAK
from repro.sim import OperationalExecutor
from repro.sim.detailed import DetailedExecutor
from repro.testgen import TestConfig, generate
from tests.differential import reference_reports

_MODELS = {"sc": SC, "tso": TSO, "weak": WEAK}


@st.composite
def poly_case(draw):
    cfg = TestConfig(
        threads=draw(st.integers(1, 4)),
        ops_per_thread=draw(st.integers(2, 25)),
        addresses=draw(st.integers(1, 8)),
        seed=draw(st.integers(0, 100_000)),
    )
    #: run on weak hardware, check against a drawn (possibly stronger)
    #: model — the violation-bearing half of the space
    check_model = _MODELS[draw(st.sampled_from(sorted(_MODELS)))]
    width = draw(st.sampled_from([32, 64]))
    seed = draw(st.integers(0, 1000))
    return cfg, check_model, width, seed


def campaign_signatures(cfg, width, seed):
    program = generate(cfg)
    codec = SignatureCodec(program, width)
    executor = OperationalExecutor(program, WEAK, seed=seed,
                                   layout=cfg.layout)
    return program, codec, \
        sorted({codec.encode(e.rf) for e in executor.run(12)})


def poly_digest(program, codec, signatures, model):
    source = PolySignatureSource(codec, model, signatures)
    return violation_digest(PolyChecker().check(source))


@given(poly_case())
@settings(max_examples=25, deadline=None)
def test_poly_digest_equals_delta(case):
    cfg, check_model, width, seed = case
    program, codec, signatures = campaign_signatures(cfg, width, seed)
    legacy, delta = reference_reports(program, codec, signatures,
                                      check_model)
    digest = poly_digest(program, codec, signatures, check_model)
    assert digest == violation_digest(delta) == violation_digest(legacy)


@given(st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_detailed_executor_runs_are_tso_clean(seed):
    """The MESI simulator without fault injection produces TSO-legal
    executions: poly and delta must both return an empty digest."""
    cfg = TestConfig(isa="x86", threads=3, ops_per_thread=10, addresses=4,
                     seed=seed % 50)
    program = generate(cfg)
    codec = SignatureCodec(program, 64)
    executor = DetailedExecutor(program, seed=seed, layout=cfg.layout)
    signatures = sorted({codec.encode(e.rf) for e in executor.run(20)
                         if not e.crashed})
    _, delta = reference_reports(program, codec, signatures, TSO)
    digest = poly_digest(program, codec, signatures, TSO)
    assert digest == violation_digest(delta)
    assert digest["violations"] == []


class TestInjectedDivergence:
    """The differential plane must bite, and hypothesis must shrink."""

    def _crippled_digest(self, program, codec, signatures, model):
        source = PolySignatureSource(codec, model, signatures)
        source.verifier._next_store = {}  # drop the from-read rule
        return violation_digest(PolyChecker().check(source))

    def test_divergence_found_and_shrunk(self):
        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=40,
                         addresses=8, seed=3)
        program = generate(cfg)
        codec = SignatureCodec(program, 32)
        executor = OperationalExecutor(program, WEAK, seed=13,
                                       layout=cfg.layout)
        pool = sorted({codec.encode(e.rf) for e in executor.run(300)})
        _, delta = reference_reports(program, codec, pool, SC)
        assert delta.violations  # the pool carries real violations

        disagreeing = []

        @given(st.sets(st.sampled_from(pool), min_size=1))
        @settings(max_examples=60, deadline=None)
        def hunt(subset):
            block = sorted(subset)
            _, ref = reference_reports(program, codec, block, SC)
            crippled = self._crippled_digest(program, codec, block, SC)
            if crippled != violation_digest(ref):
                disagreeing.append(block)
                raise AssertionError("families disagree")

        with pytest.raises(AssertionError):
            hunt()
        # hypothesis shrank the counterexample to one signature — the
        # minimal reproducer a checker-bug report would pin
        assert len(disagreeing[-1]) == 1
        block = disagreeing[-1]
        _, ref = reference_reports(program, codec, block, SC)
        assert self._crippled_digest(program, codec, block, SC) != \
            violation_digest(ref)
