"""Unit tests for the cross-client dedup store (repro.serve.dedup)."""

import json

from repro import obs
from repro.instrument.signature import Signature
from repro.serve.dedup import SignatureDedupStore, campaign_key


def _sig(value):
    return Signature(((value,),))


class TestCampaignKey:
    def test_same_program_same_width_share_a_key(self, small_program):
        assert campaign_key(small_program, 32) == \
            campaign_key(small_program, 32)

    def test_register_width_splits_the_campaign(self, small_program):
        assert campaign_key(small_program, 32) != \
            campaign_key(small_program, 64)

    def test_different_programs_never_collide(self, small_program,
                                              figure3_program):
        assert campaign_key(small_program, 32) != \
            campaign_key(figure3_program, 32)


class TestObserveRecord:
    def test_miss_then_hit(self):
        store = SignatureDedupStore()
        assert store.observe("c", _sig(1)) is None
        store.record("c", _sig(1), violation=True)
        record = store.observe("c", _sig(1))
        assert record is not None and record.violation
        assert (store.hits, store.misses) == (1, 1)
        assert record.hits == 1

    def test_campaigns_are_isolated(self):
        store = SignatureDedupStore()
        store.record("a", _sig(1), violation=False)
        # the miss on campaign "b" must not leak campaign "a"'s verdict
        assert store.observe("b", _sig(1)) is None
        assert store.campaigns == 1
        store.record("b", _sig(1), violation=True)
        assert store.observe("a", _sig(1)).violation is False
        assert store.observe("b", _sig(1)).violation is True

    def test_unique_signatures_counts_across_campaigns(self):
        store = SignatureDedupStore()
        store.record("a", _sig(1), violation=False)
        store.record("a", _sig(2), violation=False)
        store.record("b", _sig(1), violation=False)
        assert store.unique_signatures == 3
        assert store.campaigns == 2


class TestGauges:
    def test_serve_dedup_gauges_published(self):
        handle = obs.Observability(enabled=True)
        store = SignatureDedupStore()
        store.record("c", _sig(1), violation=False)
        store.observe("c", _sig(1))
        store.observe("c", _sig(2))
        store.record_gauges(handle)
        metrics = handle.metrics
        assert metrics.gauge("serve.dedup.hits").value == 1
        assert metrics.gauge("serve.dedup.misses").value == 1
        assert metrics.gauge("serve.dedup.unique_signatures").value == 1
        assert metrics.gauge("serve.dedup.hit_rate").value == 0.5


class TestJournal:
    def test_journal_replayed_on_restart(self, tmp_path):
        path = tmp_path / "dedup.jsonl"
        with SignatureDedupStore(str(path)) as store:
            store.record("c", _sig(1), violation=True)
            store.record("c", _sig(2), violation=False)
        with SignatureDedupStore(str(path)) as again:
            assert again.observe("c", _sig(1)).violation is True
            assert again.observe("c", _sig(2)).violation is False
            assert again.unique_signatures == 2

    def test_torn_tail_line_skipped(self, tmp_path):
        path = tmp_path / "dedup.jsonl"
        with SignatureDedupStore(str(path)) as store:
            store.record("c", _sig(1), violation=False)
        with open(path, "a") as handle:
            handle.write('{"campaign": "c", "words": [[2]], "viol')
        with SignatureDedupStore(str(path)) as again:
            assert again.observe("c", _sig(1)) is not None
            assert again.observe("c", _sig(2)) is None

    def test_journal_lines_are_json(self, tmp_path):
        path = tmp_path / "dedup.jsonl"
        with SignatureDedupStore(str(path)) as store:
            store.record("c", _sig(7), violation=False)
        lines = [line for line in path.read_text().splitlines() if line]
        doc = json.loads(lines[0])
        assert doc == {"campaign": "c", "words": [[7]], "violation": False}
