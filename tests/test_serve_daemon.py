"""End-to-end tests for the serve daemon (repro.serve.daemon).

The daemon runs on a private event loop in a helper thread; clients are
real sockets.  The differential pin throughout: a streamed session's
report ``summary`` must be byte-identical to checking the same multiset
through the batch ``repro run --check-pipeline delta`` path.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.harness import Campaign, check_campaign_result
from repro.serve.client import ServeClient, iter_batches, submit_campaign
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_frame_socket,
    write_frame_socket,
)
from repro.testgen import TestConfig


@pytest.fixture(scope="module")
def campaign_result():
    config = TestConfig(isa="arm", threads=2, ops_per_thread=18,
                        addresses=8, seed=17)
    return Campaign(config=config, seed=8).run(300)


@pytest.fixture
def daemon(tmp_path):
    with run_daemon(ServeConfig(report_out=str(tmp_path / "reports.jsonl"))) \
            as handle:
        yield handle


class run_daemon:
    """Context manager hosting one daemon on a background event loop."""

    def __init__(self, config=None, daemon=None):
        self.daemon = daemon or ServeDaemon(config or ServeConfig())
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def body():
            await self.daemon.start()
            self._ready.set()
            await self.daemon.run_until_drained()

        asyncio.run(body())

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(15):
            raise RuntimeError("daemon did not start")
        return self

    def drain(self, reason="test"):
        self.daemon.loop.call_soon_threadsafe(self.daemon.request_drain,
                                              reason)
        self._thread.join(30)
        assert not self._thread.is_alive(), "daemon failed to drain"

    def __exit__(self, *exc):
        if self._thread.is_alive():
            self.drain()

    @property
    def port(self):
        return self.daemon.port


def batch_summary(result):
    return check_campaign_result(result, baseline=False,
                                 pipeline="delta").collective.summary()


class TestEndToEnd:
    def test_streamed_report_is_byte_identical_to_batch(
            self, daemon, campaign_result):
        report = submit_campaign("127.0.0.1", daemon.port, campaign_result,
                                 batch=16, session="e2e")
        assert report["summary"] == batch_summary(campaign_result)
        assert report["unique_signatures"] == \
            campaign_result.unique_signatures
        assert report["signatures"] == campaign_result.iterations
        assert report["drained"] is False

    def test_report_journaled_as_jsonl(self, daemon, campaign_result,
                                       tmp_path):
        submit_campaign("127.0.0.1", daemon.port, campaign_result,
                        batch=64, session="journaled")
        daemon.drain()
        lines = (tmp_path / "reports.jsonl").read_text().splitlines()
        doc = json.loads(lines[0])
        assert doc["label"] == "journaled"
        assert doc["summary"] == batch_summary(campaign_result)
        assert doc["batches"] == len(list(iter_batches(campaign_result, 64)))

    def test_concurrent_clients_share_the_dedup_store(
            self, daemon, campaign_result):
        expected = batch_summary(campaign_result)
        reports = [None] * 4

        def stream(index):
            reports[index] = submit_campaign(
                "127.0.0.1", daemon.port, campaign_result, batch=8,
                session="c%d" % index, window=2)

        threads = [threading.Thread(target=stream, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert all(r["summary"] == expected for r in reports)
        store = daemon.daemon.dedup
        unique = campaign_result.unique_signatures
        assert store.unique_signatures == unique
        # every lookup is counted; concurrent first-sights of the same
        # signature may each miss, so misses is bounded, not exact
        assert store.hits + store.misses == 4 * unique
        assert unique <= store.misses <= 4 * unique


class TestHandshake:
    def test_version_mismatch_gets_error_frame_naming_version(self, daemon):
        with socket.create_connection(("127.0.0.1", daemon.port),
                                      timeout=10) as sock:
            write_frame_socket(sock, {"kind": "hello", "v": 99,
                                      "program": {"listing": ""},
                                      "register_width": 32})
            reply = read_frame_socket(sock)
        assert reply["kind"] == "error"
        assert "version %d" % PROTOCOL_VERSION in reply["message"]

    def test_bad_program_gets_error_frame(self, daemon):
        with socket.create_connection(("127.0.0.1", daemon.port),
                                      timeout=10) as sock:
            write_frame_socket(sock, {"kind": "hello",
                                      "v": PROTOCOL_VERSION,
                                      "program": {"name": "x"},
                                      "register_width": 32})
            assert read_frame_socket(sock)["kind"] == "error"

    def test_client_constructor_surfaces_refusal(self, daemon,
                                                 campaign_result):
        with pytest.raises(ProtocolError):
            ServeClient("127.0.0.1", daemon.port, campaign_result.program,
                        48, session="bad-width")


class TestCrashIsolation:
    def test_bad_batch_tears_down_only_that_session(
            self, daemon, campaign_result):
        with ServeClient("127.0.0.1", daemon.port, campaign_result.program,
                         32, session="hostile") as bad:
            bad.submit([{"words": "garbage"}])
            with pytest.raises(ProtocolError):
                bad.drain()
        # the daemon survives and serves the next client normally
        report = submit_campaign("127.0.0.1", daemon.port, campaign_result,
                                 batch=32, session="after-crash")
        assert report["summary"] == batch_summary(campaign_result)
        daemon.drain()
        crashed = [r for r in daemon.daemon.reports
                   if r.label == "hostile"]
        assert crashed == []        # no report for the torn-down session

    def test_oversized_batch_is_a_protocol_error(self, campaign_result):
        with run_daemon(ServeConfig(max_batch=4)) as handle:
            with ServeClient("127.0.0.1", handle.port,
                             campaign_result.program, 32) as client:
                with pytest.raises(ProtocolError):
                    client.submit([{"words": [[0]], "count": 1}] * 5)


class TestPortFile:
    def test_port_file_written_and_probe_sees_the_daemon(self, tmp_path):
        from repro.serve.daemon import probe, wait_for_port

        port_file = tmp_path / "port.txt"
        with run_daemon(ServeConfig(port_file=str(port_file))) as handle:
            assert wait_for_port(str(port_file), 10.0) == handle.port
            assert probe("127.0.0.1", handle.port)
        assert not probe("127.0.0.1", handle.port)
