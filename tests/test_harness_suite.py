"""Unit tests for multi-test suite orchestration."""

from repro.harness import SuiteRunner
from repro.testgen import TestConfig


class TestSuiteRunner:
    def test_aggregates_across_tests(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=15, addresses=8, seed=5)
        stats = SuiteRunner(cfg, tests=3, iterations=80).run(seed=2)
        assert stats.tests == 3
        assert len(stats.unique_signatures) == 3
        assert stats.mean_unique > 0
        assert stats.crashes == 0
        assert stats.violating_signatures == 0
        assert stats.tests_with_violations == 0

    def test_checking_reduction_positive(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=30, addresses=8, seed=5)
        stats = SuiteRunner(cfg, tests=2, iterations=250).run(seed=2)
        assert 0.0 < stats.checking_reduction < 1.0
        assert stats.collective_sorted_vertices < stats.baseline_sorted_vertices

    def test_method_counts_cover_all_graphs(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20, addresses=8, seed=5)
        stats = SuiteRunner(cfg, tests=2, iterations=150).run(seed=2)
        assert sum(stats.method_counts.values()) == sum(stats.unique_signatures)

    def test_run_without_checking(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=15, addresses=8, seed=5)
        stats = SuiteRunner(cfg, tests=2, iterations=60).run(seed=2, check=False)
        assert stats.baseline_sorted_vertices == 0
        assert stats.checking_reduction == 0.0
        assert len(stats.unique_signatures) == 2

    def test_campaign_kwargs_forwarded(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=15, addresses=8, seed=5)
        stats = SuiteRunner(cfg, tests=1, iterations=50,
                            instrumentation="flush").run(seed=2)
        assert stats.tests == 1
