"""Unit tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def _reset_observability():
    """CLI commands install a global obs instance; isolate each test."""
    yield
    obs.disable()


class TestGenerate:
    def test_emits_assembler_text(self, capsys):
        assert main(["generate", "--threads", "2", "--ops", "5",
                     "--addresses", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert ".addresses 4" in out
        assert "thread 0:" in out and "thread 1:" in out

    def test_output_parses_back(self, capsys):
        from repro.isa import assemble

        main(["generate", "--threads", "3", "--ops", "10", "--addresses", "8"])
        program = assemble(capsys.readouterr().out)
        assert program.num_threads == 3


class TestInstrument:
    def test_metrics_table(self, capsys):
        assert main(["instrument", "--threads", "2", "--ops", "10",
                     "--addresses", "4"]) == 0
        out = capsys.readouterr().out
        assert "signature bytes" in out
        assert "code size ratio" in out

    def test_listing_flag(self, capsys):
        main(["instrument", "--threads", "2", "--ops", "6", "--addresses", "4",
              "--listing"])
        out = capsys.readouterr().out
        assert "else assert error" in out


class TestRunAndCheck:
    def test_run_reports_uniques(self, capsys):
        assert main(["run", "--threads", "2", "--ops", "15", "--addresses", "8",
                     "--iterations", "100"]) == 0
        assert "unique signatures" in capsys.readouterr().out

    def test_run_then_check(self, capsys, tmp_path):
        dump = str(tmp_path / "d.json")
        assert main(["run", "--threads", "2", "--ops", "15", "--addresses", "8",
                     "--iterations", "120", "-o", dump]) == 0
        capsys.readouterr()
        assert main(["check", dump]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out

    def test_check_observed_mode(self, capsys, tmp_path):
        dump = str(tmp_path / "d.json")
        main(["run", "--isa", "x86", "--threads", "2", "--ops", "10",
              "--addresses", "4", "--iterations", "80", "-o", dump])
        capsys.readouterr()
        assert main(["check", dump, "--ws-mode", "observed", "--model", "tso"]) == 0

    def test_run_with_os_flag(self, capsys):
        assert main(["run", "--threads", "2", "--ops", "10", "--addresses", "4",
                     "--iterations", "40", "--os"]) == 0


class TestFleetCLI:
    RUN = ["run", "--threads", "2", "--ops", "10", "--addresses", "8",
           "--iterations", "80", "--run-seed", "3"]

    def test_run_jobs_flag_shards_the_campaign(self, capsys):
        assert main(self.RUN + ["--jobs", "2"]) == 0
        assert "unique signatures" in capsys.readouterr().out

    def test_sharded_dump_equals_serial_dump(self, capsys, tmp_path):
        from repro.io import read_campaign

        serial, sharded = str(tmp_path / "s.json"), str(tmp_path / "f.json")
        assert main(self.RUN + ["-o", serial]) == 0
        assert main(self.RUN + ["--jobs", "2", "-o", sharded]) == 0
        capsys.readouterr()
        assert read_campaign(sharded).signature_counts == \
               read_campaign(serial).signature_counts

    def test_merge_subcommand_unions_shards(self, capsys, tmp_path):
        from repro.io import read_campaign, save_campaign
        from repro.harness import Campaign
        from repro.testgen import TestConfig

        cfg = TestConfig(threads=2, ops_per_thread=10, addresses=8, seed=5)
        campaign = Campaign(config=cfg, seed=9)
        paths = []
        for i in range(2):
            shard = Campaign(program=campaign.program, config=cfg,
                             seed=9).run_blocks([(i, 40)])
            paths.append(str(tmp_path / ("shard%d.json" % i)))
            save_campaign(shard, paths[-1])
        merged_path = str(tmp_path / "merged.json")
        assert main(["merge", *paths, "-o", merged_path]) == 0
        assert "merged 2 shard dumps" in capsys.readouterr().out
        whole = campaign.run(80, block=40)
        assert read_campaign(merged_path).signature_counts == \
               whole.signature_counts

    def test_merge_rejects_mismatched_shards(self, capsys, tmp_path):
        from repro.io import save_campaign
        from repro.harness import Campaign
        from repro.testgen import TestConfig

        a = Campaign(config=TestConfig(threads=2, ops_per_thread=10,
                                       addresses=8, seed=5))
        b = Campaign(config=TestConfig(threads=2, ops_per_thread=10,
                                       addresses=8, seed=6))
        pa, pb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        save_campaign(a.run(20), pa)
        save_campaign(b.run(20), pb)
        assert main(["merge", pa, pb, "-o", str(tmp_path / "m.json")]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_suite_subcommand(self, capsys):
        assert main(["suite", "--threads", "2", "--ops", "8", "--addresses",
                     "4", "--tests", "2", "--iterations", "40"]) == 0
        out = capsys.readouterr().out
        assert "mean unique signatures" in out
        assert "checking reduction" in out

    def test_suite_with_jobs(self, capsys):
        assert main(["suite", "--threads", "2", "--ops", "8", "--addresses",
                     "4", "--tests", "2", "--iterations", "40",
                     "--jobs", "2"]) == 0
        assert "mean unique signatures" in capsys.readouterr().out

    def test_run_jobs_report_includes_fleet_spans(self, capsys, tmp_path):
        path = str(tmp_path / "report.json")
        assert main(self.RUN + ["--jobs", "2", "--metrics-out", path]) == 0
        report = obs.read_report(path)
        names = obs.span_names(report)
        assert {"generate", "instrument", "execute",
                "fleet.shard", "fleet.merge"} <= names
        assert report["summary"]["jobs"] == 2
        assert "fleet.workers_launched" in report["metrics"]
        # device-side series absorbed into the host report
        assert report["metrics"]["harness.iterations"]["value"] == 80


class TestLitmus:
    def test_litmus_clean_under_tso(self, capsys):
        assert main(["litmus", "--model", "tso", "--iterations", "300"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "VIOLATION" not in out

    def test_litmus_extended_set(self, capsys):
        assert main(["litmus", "--model", "sc", "--iterations", "150",
                     "--extended"]) == 0
        assert "WRC" in capsys.readouterr().out


class TestObservabilityCLI:
    RUN_ARGS = ["run", "--threads", "2", "--ops", "12", "--addresses", "8",
                "--iterations", "100"]

    def test_run_metrics_out_writes_four_phase_report(self, capsys, tmp_path):
        path = str(tmp_path / "report.json")
        assert main(self.RUN_ARGS + ["--metrics-out", path]) == 0
        report = obs.read_report(path)
        assert report["schema"] == "repro.run-report"
        assert {"generate", "instrument", "execute",
                "check"} <= obs.span_names(report)
        assert report["meta"]["command"] == "run"
        assert report["summary"]["iterations"] == 100
        assert "checker.collective.graphs" in report["metrics"]

    def test_run_json_prints_report_not_text(self, capsys):
        assert main(self.RUN_ARGS + ["--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out)          # whole stdout is one JSON document
        obs.validate_report(report)
        assert report["summary"]["unique_signatures"] >= 1

    def test_check_json_report(self, capsys, tmp_path):
        dump = str(tmp_path / "d.json")
        main(self.RUN_ARGS + ["-o", dump])
        capsys.readouterr()
        assert main(["check", dump, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        # default delta pipeline streams — no graph list is ever built
        spans = obs.span_names(report)
        assert {"check", "checker.collective"} <= spans
        assert "check.build_graphs" not in spans
        assert "checker.delta.graphs" in report["metrics"]
        assert report["summary"]["violations"] == 0

    def test_check_json_report_graphs_pipeline(self, capsys, tmp_path):
        dump = str(tmp_path / "d.json")
        main(self.RUN_ARGS + ["-o", dump])
        capsys.readouterr()
        assert main(["check", dump, "--json",
                     "--check-pipeline", "graphs"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {"check", "check.build_graphs"} <= obs.span_names(report)
        assert report["summary"]["violations"] == 0

    def test_litmus_metrics_out(self, capsys, tmp_path):
        path = str(tmp_path / "litmus.json")
        assert main(["litmus", "--model", "tso", "--iterations", "100",
                     "--metrics-out", path]) == 0
        report = obs.read_report(path)
        assert report["metrics"]["litmus.tests"]["value"] >= 1

    def test_stats_renders_report(self, capsys, tmp_path):
        path = str(tmp_path / "report.json")
        main(self.RUN_ARGS + ["--metrics-out", path])
        capsys.readouterr()
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "generate" in out and "execute" in out
        assert "harness.iterations" in out

    def test_stats_validate_flag(self, capsys, tmp_path):
        path = str(tmp_path / "report.json")
        main(self.RUN_ARGS + ["--metrics-out", path])
        capsys.readouterr()
        assert main(["stats", path, "--validate"]) == 0
        assert "valid" in capsys.readouterr().out

    def test_stats_rejects_malformed_report(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        assert main(["stats", str(path)]) == 2
        assert "error" in capsys.readouterr().err.lower()


class TestMutateCLI:
    def test_list_prints_registry(self, capsys):
        assert main(["mutate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "tso-stale-read" in out and "gem5-writeback-race" in out
        assert "fault-injection registry" in out

    def test_single_mutation_detected_exits_zero(self, capsys):
        assert main(["mutate", "--mutation", "tso-stale-read",
                     "--no-control"]) == 0
        out = capsys.readouterr().out
        assert "assert" in out and "yes" in out

    def test_undetected_mutation_exits_one(self, capsys):
        # a 1-iteration budget cannot detect anything
        assert main(["mutate", "--mutation", "weak-fence-drop", "--budget",
                     "1", "--seeds", "1", "--no-control"]) == 1
        assert "UNDETECTED: weak-fence-drop" in capsys.readouterr().out

    def test_json_document(self, capsys):
        assert main(["mutate", "--mutation", "tso-stale-read", "--seeds", "1",
                     "--no-control", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["undetected"] == []
        entry = doc["mutations"][0]
        assert entry["mutation"] == "tso-stale-read"
        assert entry["detected"] is True
        assert entry["seeds"][0]["channel"] == "assert"

    def test_metrics_out_writes_report(self, capsys, tmp_path):
        path = str(tmp_path / "mutate.json")
        assert main(["mutate", "--mutation", "tso-stale-read", "--seeds", "1",
                     "--no-control", "--metrics-out", path]) == 0
        with open(path) as handle:
            report = json.load(handle)
        assert report["meta"]["command"] == "mutate"
        assert report["summary"]["undetected"] == 0

    def test_unknown_mutation_name_exits_cleanly(self, capsys):
        assert main(["mutate", "--mutation", "no-such-mutation"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown mutation")
        assert "Traceback" not in err

    def test_run_with_mutation_reports_asserts(self, capsys):
        assert main(["run", "--isa", "x86", "--threads", "4", "--ops", "30",
                     "--addresses", "4", "--seed", "14", "--mutation",
                     "tso-stale-read", "--iterations", "64"]) == 0
        assert "signature asserts" in capsys.readouterr().out

    def test_run_unknown_mutation_exits_cleanly(self, capsys):
        assert main(["run", "--mutation", "bogus", "--iterations", "4"]) == 2
        assert capsys.readouterr().err.startswith("error: unknown mutation")

    def test_run_detailed_mutation_on_arm_exits_cleanly(self, capsys):
        assert main(["run", "--mutation", "gem5-lsq-squash",
                     "--iterations", "4"]) == 2
        assert "x86 only" in capsys.readouterr().err

    def test_run_mutation_conflicts_with_bug_flag(self, capsys):
        assert main(["run", "--isa", "x86", "--mutation", "tso-stale-read",
                     "--bug", "2", "--iterations", "4"]) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_run_bug_on_non_x86_exits_cleanly(self, capsys):
        assert main(["run", "--isa", "arm", "--bug", "3",
                     "--iterations", "4"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "x86" in err


class TestServeCLI:
    def test_protocol_doc_matches_generator(self, capsys):
        from repro.serve.protocol import protocol_markdown

        assert main(["serve", "--protocol-doc"]) == 0
        assert capsys.readouterr().out == protocol_markdown() + "\n"

    def test_parse_address_accepts_host_port(self):
        from repro.cli import _parse_address

        assert _parse_address("10.0.0.9:4821") == ("10.0.0.9", 4821)
        assert _parse_address(":4821") == ("127.0.0.1", 4821)

    def test_parse_address_rejects_malformed(self):
        from repro.cli import _parse_address

        for text in ("nocolon", "host:", "host:abc", "4821"):
            with pytest.raises(ValueError):
                _parse_address(text)

    def test_submit_rejects_bad_address(self, capsys, tmp_path):
        dump = str(tmp_path / "d.json")
        assert main(["run", "--threads", "2", "--ops", "10", "--addresses",
                     "4", "--iterations", "20", "-o", dump]) == 0
        capsys.readouterr()
        assert main(["submit", "not-an-address", dump]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestLintCLI:
    def test_json_document_carries_schema_header(self, capsys):
        assert main(["lint", "--litmus", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint"
        assert doc["version"] == 1
        assert doc["rules"] > 0
        assert doc["programs"] == len(doc["reports"]) == 8

    def test_empty_program_set_exits_zero_for_every_fail_on(self, capsys):
        """Pinned contract: zero programs means zero failures, at any
        threshold — an empty suite must never flip the exit code."""
        for fail_on in ("error", "warning", "info", "never"):
            assert main(["lint", "--tests", "0", "--fail-on", fail_on,
                         "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["programs"] == 0
            assert doc["failing"] == 0
            assert doc["reports"] == []

    def test_reports_carry_feasible_fields(self, capsys):
        assert main(["lint", "--litmus", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        for report in doc["reports"]:
            assert "feasible_outcomes" in report
            assert "feasible_exhaustive" in report
            assert report["feasible_exhaustive"] is True


class TestFeasibleCLI:
    def test_doc_flag_matches_generator(self, capsys):
        from repro.feasible.doc import feasible_markdown

        assert main(["feasible", "--doc"]) == 0
        assert capsys.readouterr().out == feasible_markdown() + "\n"

    def test_litmus_enumeration_text(self, capsys):
        assert main(["feasible", "--litmus", "--model", "tso"]) == 0
        out = capsys.readouterr().out
        assert "MP under tso: 3 of 4 encodable signatures feasible" in out

    def test_json_document(self, capsys):
        assert main(["feasible", "--litmus", "--model", "tso", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.feasible"
        assert doc["version"] == 1
        assert len(doc["programs"]) == 8
        assert doc["out_of_set"] == 0
        mp = next(p for p in doc["programs"] if p["program"] == "MP")
        assert mp["feasible"] == 3 and mp["exhaustive"] is True

    def test_list_outcomes_decodes_rf(self, capsys):
        assert main(["feasible", "--isa", "x86", "--threads", "2",
                     "--ops", "4", "--addresses", "2",
                     "--list-outcomes"]) == 0
        out = capsys.readouterr().out
        assert "<-" in out  # decoded per-load outcomes printed

    def test_coverage_clean_corpus_exits_zero(self, capsys):
        assert main(["feasible", "--litmus", "--model", "tso", "--coverage",
                     "--iterations", "200"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "OUT OF FEASIBLE SET" not in out

    def test_coverage_json_fields(self, capsys):
        assert main(["feasible", "--litmus", "--model", "tso", "--coverage",
                     "--iterations", "100", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        for p in doc["programs"]:
            assert p["out_of_set"] == 0
            assert p["observed"] >= 1
            assert 0 < p["coverage"] <= 1


class TestCrossCheckCLI:
    RUN = ["run", "--isa", "x86", "--threads", "2", "--ops", "8",
           "--addresses", "4", "--iterations", "60"]

    def test_run_cross_check_agrees(self, capsys):
        assert main(self.RUN + ["--cross-check", "feasible"]) == 0
        out = capsys.readouterr().out
        assert "cross-check (feasible oracle, tso)" in out
        assert "verdict: AGREE" in out

    def test_run_json_summary_carries_cross_check(self, capsys):
        assert main(self.RUN + ["--cross-check", "feasible", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        xc = report["summary"]["cross_check"]
        assert xc["agreement"] is True
        assert xc["out_of_set"] == 0

    def test_check_cross_check(self, capsys, tmp_path):
        dump = str(tmp_path / "d.json")
        assert main(self.RUN + ["-o", dump]) == 0
        capsys.readouterr()
        assert main(["check", dump, "--cross-check", "feasible"]) == 0
        out = capsys.readouterr().out
        assert "verdict: AGREE" in out

    def test_mutate_cross_check_channel(self, capsys):
        assert main(["mutate", "--mutation", "tso-sb-reorder", "--seeds", "1",
                     "--no-control", "--cross-check", "feasible",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        [m] = doc["mutations"]
        assert m["cross_check"] == "feasible"
        assert m["detected"] is True

    def test_cross_check_rejects_unknown_oracle(self, capsys):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--cross-check", "nonsense"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
