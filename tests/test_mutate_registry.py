"""Unit tests for the mutation registry and its validation rules."""

import pytest

from repro.errors import ReproError
from repro.mutate import (
    CampaignSpec,
    Mutation,
    Trigger,
    all_mutations,
    detailed_mutations,
    get_mutation,
    operational_mutations,
    register,
)
from repro.sim.faults import Bug, FaultConfig


class TestRegistryContents:
    def test_covers_both_executor_families(self):
        ops = {m.name for m in operational_mutations()}
        det = {m.name for m in detailed_mutations()}
        assert {"tso-sb-reorder", "tso-fence-drop", "weak-fence-drop",
                "tso-stale-read", "weak-stale-read", "weak-window-escape",
                "tso-sb-forward-alias"} <= ops
        assert det == {"gem5-protocol-squash", "gem5-lsq-squash",
                       "gem5-writeback-race"}
        assert {m.name for m in all_mutations()} == ops | det

    def test_every_mutation_has_provenance_and_spec(self):
        for m in all_mutations():
            assert m.provenance, m.name
            assert m.spec is not None and m.spec.budget > 0, m.name
            assert m.spec.seeds >= 1, m.name

    def test_paper_bugs_map_onto_registry_entries(self):
        for bug in Bug:
            m = get_mutation(bug.mutation_name)
            assert m.executor == "detailed" and m.bug is bug

    def test_crash_class_is_exactly_bug3(self):
        crash = [m.name for m in all_mutations() if m.fault_class == "crash"]
        assert crash == ["gem5-writeback-race"]

    def test_operational_mutations_arm_known_executor_points(self):
        from repro.sim.executor import OperationalExecutor

        documented = OperationalExecutor.__doc__
        for m in operational_mutations():
            for point in m.points:
                assert "``%s``" % point in documented, point


class TestLookup:
    def test_get_mutation_resolves_names(self):
        m = get_mutation("tso-stale-read")
        assert m.points == ("mem.stale_read",)

    def test_unknown_name_is_a_repro_error_listing_known(self):
        with pytest.raises(ReproError, match="tso-stale-read"):
            get_mutation("no-such-mutation")

    def test_duplicate_registration_rejected(self):
        existing = all_mutations()[0]
        with pytest.raises(ReproError, match="duplicate"):
            register(existing)


class TestMutationValidation:
    def test_bad_executor_rejected(self):
        with pytest.raises(ReproError):
            Mutation(name="x", title="t", provenance="p", executor="rtl")

    def test_bad_fault_class_rejected(self):
        with pytest.raises(ReproError):
            Mutation(name="x", title="t", provenance="p",
                     executor="operational", points=("a",),
                     fault_class="hang")

    def test_detailed_mutation_needs_a_bug(self):
        with pytest.raises(ReproError):
            Mutation(name="x", title="t", provenance="p", executor="detailed")

    def test_operational_mutation_needs_points(self):
        with pytest.raises(ReproError):
            Mutation(name="x", title="t", provenance="p",
                     executor="operational")


class TestFaultConfigBridge:
    def test_detailed_mutation_builds_fault_config(self):
        m = get_mutation("gem5-writeback-race")
        fc = m.fault_config()
        assert isinstance(fc, FaultConfig)
        assert fc.bug is Bug.WRITEBACK_RACE
        assert fc.l1_lines == m.spec.l1_lines
        assert fc.crash_on_writeback_race

    def test_operational_mutation_has_no_fault_config(self):
        with pytest.raises(ReproError):
            get_mutation("tso-stale-read").fault_config()

    def test_spec_defaults(self):
        spec = CampaignSpec(config=None)
        assert spec.budget == 256 and spec.seeds == 3
        assert spec.ws_mode == "static" and not spec.sync_barriers

    def test_trigger_default_is_always(self):
        m = Mutation(name="x", title="t", provenance="p",
                     executor="operational", points=("a",))
        assert m.trigger == Trigger.always()
