"""Tests for the TSO frontier codec (dynamic pruning, paper Section 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignatureError
from repro.instrument import FrontierCodec, SignatureCodec
from repro.isa import INIT, TestProgram, load, store
from repro.mcm import SC, TSO
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate


class TestFrontierRules:
    def test_init_pruned_after_local_store(self):
        """Once a thread stored to an address, later loads can't see INIT."""
        p = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)]], num_addresses=1)
        codec = FrontierCodec(p)
        ld = p.threads[0].ops[1].uid
        with pytest.raises(SignatureError):
            codec.encode({ld: INIT})

    def test_stale_store_pruned_after_observation(self):
        """Observing thread u's store #2 kills u's older store #1 for
        later same-address loads (and INIT with it)."""
        p = TestProgram.from_ops(
            [
                [load(0, 0, 0), load(0, 1, 0)],
                [store(1, 0, 0, 1), store(1, 1, 0, 2)],
            ],
            num_addresses=1)
        codec = FrontierCodec(p)
        ld_a, ld_b = (op.uid for op in p.threads[0].ops)
        st1, st2 = (op.uid for op in p.threads[1].ops)
        # reading #2 then #1 must be rejected (also a CoRR violation)
        with pytest.raises(SignatureError):
            codec.encode({ld_a: st2, ld_b: st1})
        with pytest.raises(SignatureError):
            codec.encode({ld_a: st2, ld_b: INIT})
        # reading #1 then #2 is fine
        sig = codec.encode({ld_a: st1, ld_b: st2})
        assert codec.decode(sig) == {ld_a: st1, ld_b: st2}

    def test_cross_address_frontier(self):
        """Observing u's store to y prunes u's older store to x."""
        p = TestProgram.from_ops(
            [
                [load(0, 0, 1), load(0, 1, 0)],      # ld y ; ld x
                [store(1, 0, 0, 1), store(1, 1, 0, 2), store(1, 2, 1, 3)],
            ],
            num_addresses=2)
        codec = FrontierCodec(p)
        ld_y, ld_x = (op.uid for op in p.threads[0].ops)
        st_x1, st_x2, st_y = (op.uid for op in p.threads[1].ops)
        # seeing y=#3 means x's older store #1 (behind #2) is dead
        with pytest.raises(SignatureError):
            codec.encode({ld_y: st_y, ld_x: st_x1})
        sig = codec.encode({ld_y: st_y, ld_x: st_x2})
        assert codec.decode(sig) == {ld_y: st_y, ld_x: st_x2}

    def test_wrong_thread_count_rejected(self, small_program):
        from repro.instrument.dynamic_pruning import FrontierSignature

        codec = FrontierCodec(small_program)
        with pytest.raises(SignatureError):
            codec.decode(FrontierSignature((0,)))


class TestAgainstExecutor:
    @pytest.mark.parametrize("model", [TSO, SC], ids=lambda m: m.name)
    def test_roundtrip_on_compliant_executions(self, model):
        """Every TSO/SC execution encodes (frontier never violated) and
        decodes back exactly."""
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=30,
                         addresses=8, seed=14)
        p = generate(cfg)
        codec = FrontierCodec(p)
        ex = OperationalExecutor(p, model, seed=6)
        for e in ex.run(120):
            sig = codec.encode(e.rf)
            assert codec.decode(sig) == e.rf

    def test_signatures_never_longer_than_static(self):
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=40,
                         addresses=16, seed=15)
        p = generate(cfg)
        frontier = FrontierCodec(p)
        static_bits = SignatureCodec(p, 64).byte_size * 8
        ex = OperationalExecutor(p, TSO, seed=7)
        sizes = [frontier.size_of(e.rf) for e in ex.run(60)]
        assert all(s <= static_bits for s in sizes)

    def test_meaningful_compression(self):
        """The frontier saves a substantial fraction of signature bits on
        contended TSO tests (the Section 8 motivation)."""
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=50,
                         addresses=16, seed=8)
        p = generate(cfg)
        frontier = FrontierCodec(p)
        static_bits = SignatureCodec(p, 64).byte_size * 8
        ex = OperationalExecutor(p, TSO, seed=4)
        mean = sum(frontier.size_of(e.rf) for e in ex.run(80)) / 80
        assert mean < 0.85 * static_bits


@given(st.integers(0, 5000))
@settings(max_examples=25, deadline=None)
def test_property_frontier_roundtrip(seed):
    cfg = TestConfig(isa="x86",
                     threads=2 + seed % 3,
                     ops_per_thread=10 + seed % 25,
                     addresses=2 + seed % 8,
                     seed=seed)
    p = generate(cfg)
    codec = FrontierCodec(p)
    ex = OperationalExecutor(p, TSO, seed=seed)
    for e in ex.run(5):
        assert codec.decode(codec.encode(e.rf)) == e.rf
