"""The PR's pinned differential contract (ISSUE acceptance criteria).

On every Figure-8..12 paper configuration and the litmus corpus:

* observed signatures ⊆ static feasible set (exact per-signature
  membership — never sampled, whatever the program size);
* the graphs pipeline, the delta pipeline and the feasible oracle agree
  on clean runs (no violations, no membership misses, no disagreement);
* each detailed gem5 bug mutation yields at least one
  out-of-feasible-set signature (or crashes before shipping any),
  exercised through the mutate sensitivity path in
  ``test_mutate_crosscheck.py``.
"""

import pytest

from repro.feasible import FeasibilityOracle, cross_check_outcome
from repro.harness import Campaign, check_campaign_result
from repro.instrument import SignatureCodec
from repro.mcm import get_model
from repro.sim import OperationalExecutor
from repro.testgen.config import PAPER_CONFIGS
from repro.testgen.litmus import all_litmus_tests


@pytest.mark.parametrize("cfg", PAPER_CONFIGS, ids=lambda c: c.name)
def test_paper_config_contract(cfg):
    campaign = Campaign(config=cfg, seed=1)
    result = campaign.run(4)
    outcomes = {
        pipeline: check_campaign_result(result, campaign.model,
                                        baseline=False, pipeline=pipeline)
        for pipeline in ("graphs", "delta")
    }
    # both dynamic pipelines clean and in agreement
    for pipeline, outcome in outcomes.items():
        assert not outcome.collective.violations, (cfg.name, pipeline)
    assert outcomes["graphs"].signatures == outcomes["delta"].signatures
    # the static oracle agrees with each (exact membership per signature)
    for pipeline, outcome in outcomes.items():
        xc = cross_check_outcome(result, outcome, campaign.model)
        assert xc.agreement, (cfg.name, pipeline)
        assert not xc.out_of_set, (cfg.name, pipeline)
        assert len(xc.verdicts) == result.unique_signatures


@pytest.mark.parametrize("model_name", ("sc", "tso", "weak"))
def test_litmus_corpus_contract(model_name):
    model = get_model(model_name)
    for lt in all_litmus_tests():
        codec = SignatureCodec(lt.program, 64)
        oracle = FeasibilityOracle(lt.program, model)
        executor = OperationalExecutor(lt.program, model, seed=1)
        for execution in executor.run(200):
            assert oracle.is_feasible(execution.rf), (lt.name, model_name)
            sig = codec.encode(execution.rf)
            assert oracle.is_feasible(codec.decode(sig)), \
                (lt.name, model_name)
