"""Unit tests for constraint-graph construction (static vs observed ws)."""

import pytest

from repro.errors import CheckerError
from repro.graph import FR, RF, GraphBuilder, topological_sort
from repro.isa import INIT, TestProgram, load, store
from repro.mcm import SC, TSO, WEAK
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate


@pytest.fixture
def two_writer_program():
    """t0: st x #1 ; t1: st x #2 ; t2: ld x, ld x."""
    return TestProgram.from_ops(
        [
            [store(0, 0, 0, 1)],
            [store(1, 0, 0, 2)],
            [load(2, 0, 0), load(2, 1, 0)],
        ],
        num_addresses=1,
    )


class TestStaticMode:
    def test_intra_thread_rf_skipped(self, figure3_program):
        builder = GraphBuilder(figure3_program, TSO, ws_mode="static")
        p = figure3_program
        ld2 = p.threads[0].ops[1].uid     # reads own store (1)
        st1 = p.threads[0].ops[0].uid
        graph = builder.build({ld2: st1})
        assert (st1, ld2) not in graph

    def test_cross_thread_rf_added(self, two_writer_program):
        p = two_writer_program
        builder = GraphBuilder(p, TSO, ws_mode="static")
        st1, ld_a = p.threads[0].ops[0].uid, p.threads[2].ops[0].uid
        graph = builder.build({ld_a: st1, p.threads[2].ops[1].uid: st1})
        assert (st1, ld_a) in graph
        assert graph.edge_kind(st1, ld_a) == RF

    def test_init_reader_precedes_first_stores_of_each_thread(self, two_writer_program):
        p = two_writer_program
        builder = GraphBuilder(p, TSO, ws_mode="static")
        ld_a = p.threads[2].ops[0].uid
        graph = builder.build({ld_a: INIT, p.threads[2].ops[1].uid: INIT})
        st1 = p.threads[0].ops[0].uid
        st2 = p.threads[1].ops[0].uid
        assert (ld_a, st1) in graph and (ld_a, st2) in graph

    def test_same_thread_store_chains_are_static_ws(self):
        p = TestProgram.from_ops(
            [[store(0, 0, 0, 1), store(0, 1, 0, 2)]], num_addresses=1)
        builder = GraphBuilder(p, WEAK, ws_mode="static")
        graph = builder.build({})
        assert (0, 1) in graph

    def test_fr_points_to_po_next_store(self):
        p = TestProgram.from_ops(
            [
                [store(0, 0, 0, 1), store(0, 1, 0, 2)],
                [load(1, 0, 0)],
            ],
            num_addresses=1)
        builder = GraphBuilder(p, TSO, ws_mode="static")
        ld = p.threads[1].ops[0].uid
        graph = builder.build({ld: 0})       # reads store #1
        assert (ld, 1) in graph              # fr to store #2
        assert graph.edge_kind(ld, 1) == FR

    def test_graph_is_function_of_rf_only(self, small_program):
        """Static mode: same rf => identical edge sets (what makes
        signature-identical executions share one graph)."""
        from repro.instrument import candidate_sources

        builder = GraphBuilder(small_program, WEAK, ws_mode="static")
        cands = candidate_sources(small_program)
        rf = {uid: c[0] for uid, c in cands.items()}
        assert builder.build(rf).edge_pairs == builder.build(dict(rf)).edge_pairs


class TestObservedMode:
    def test_requires_ws(self, small_program):
        builder = GraphBuilder(small_program, WEAK, ws_mode="observed")
        with pytest.raises(CheckerError):
            builder.build({}, None)

    def test_ws_chain_must_cover_all_stores(self, two_writer_program):
        builder = GraphBuilder(two_writer_program, TSO, ws_mode="observed")
        with pytest.raises(CheckerError):
            builder.build({}, {0: [0]})      # store uid 1 missing

    def test_ws_chain_edges(self, two_writer_program):
        p = two_writer_program
        builder = GraphBuilder(p, TSO, ws_mode="observed")
        graph = builder.build(
            {p.threads[2].ops[0].uid: 0, p.threads[2].ops[1].uid: 1}, {0: [0, 1]})
        assert (0, 1) in graph               # ws chain

    def test_fr_from_init_reader_to_first_in_chain(self, two_writer_program):
        p = two_writer_program
        ld_a = p.threads[2].ops[0].uid
        builder = GraphBuilder(p, TSO, ws_mode="observed")
        graph = builder.build({ld_a: INIT, p.threads[2].ops[1].uid: 1}, {0: [1, 0]})
        assert (ld_a, 1) in graph

    def test_detects_corr_violation(self, two_writer_program):
        """ld new-then-old across same address is cyclic."""
        p = two_writer_program
        ld_a, ld_b = (op.uid for op in p.threads[2].ops)
        builder = GraphBuilder(p, TSO, ws_mode="observed")
        graph = builder.build({ld_a: 1, ld_b: 0}, {0: [0, 1]})
        assert topological_sort(range(p.num_ops), graph.adjacency) is None

    def test_invalid_ws_mode_rejected(self, small_program):
        with pytest.raises(CheckerError):
            GraphBuilder(small_program, TSO, ws_mode="dynamic")


class TestAgainstExecutor:
    @pytest.mark.parametrize("model", [SC, TSO, WEAK], ids=lambda m: m.name)
    def test_compliant_executions_are_acyclic_observed(self, model):
        cfg = TestConfig(threads=3, ops_per_thread=30, addresses=8, seed=13)
        p = generate(cfg)
        builder = GraphBuilder(p, model, ws_mode="observed")
        ex = OperationalExecutor(p, model, seed=4)
        for e in ex.run(150):
            graph = builder.build(e.rf, e.ws)
            assert topological_sort(range(p.num_ops), graph.adjacency) is not None

    @pytest.mark.parametrize("model", [SC, TSO, WEAK], ids=lambda m: m.name)
    def test_compliant_executions_are_acyclic_static(self, model):
        cfg = TestConfig(threads=3, ops_per_thread=30, addresses=8, seed=13)
        p = generate(cfg)
        builder = GraphBuilder(p, model, ws_mode="static")
        ex = OperationalExecutor(p, model, seed=4)
        for e in ex.run(150):
            graph = builder.build(e.rf)
            assert topological_sort(range(p.num_ops), graph.adjacency) is not None

    def test_static_edges_subset_of_observed(self, small_program):
        """Static mode is a sound weakening: every static edge is implied
        by the observed-mode graph's ordering."""
        ex = OperationalExecutor(small_program, WEAK, seed=9)
        execution = ex.run_one()
        static = GraphBuilder(small_program, WEAK, "static").build(execution.rf)
        observed = GraphBuilder(small_program, WEAK, "observed").build(
            execution.rf, execution.ws)
        import networkx as nx

        og = nx.DiGraph()
        og.add_nodes_from(range(small_program.num_ops))
        og.add_edges_from(observed.edge_pairs)
        closure = nx.transitive_closure(og)
        for u, v in static.edge_pairs:
            assert closure.has_edge(u, v), (u, v)


class TestObservedWsCoverage:
    """Regression: observed mode must reject missing ws chains (a missing
    chain would silently weaken checking and hide violations)."""

    def test_missing_chain_rejected(self):
        from repro.testgen.litmus import corr

        lt = corr()
        builder = GraphBuilder(lt.program, TSO, ws_mode="observed")
        with pytest.raises(CheckerError):
            builder.build(lt.interesting_rf, {})

    def test_partial_ws_rejected(self, two_writer_program):
        builder = GraphBuilder(two_writer_program, TSO, ws_mode="observed")
        with pytest.raises(CheckerError):
            builder.build({}, {1: []})      # address 0 has stores, no chain
