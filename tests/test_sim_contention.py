"""Unit tests for the cache-line contention model."""

import random

from repro.isa import MemoryLayout
from repro.sim import ContentionModel, LatencyConfig, UniformModel


def make(words_per_line=1, jitter=0.0, hiccup=0.0):
    cfg = LatencyConfig(jitter=jitter, hiccup_prob=hiccup)
    return ContentionModel(MemoryLayout(16, words_per_line), random.Random(1), cfg)


class TestLatencies:
    def test_first_touch_is_miss(self):
        m = make()
        assert m.load_latency(0, 3) == LatencyConfig().miss

    def test_repeat_load_hits(self):
        m = make()
        m.load_latency(0, 3)
        assert m.load_latency(0, 3) == LatencyConfig().l1_hit

    def test_second_reader_pays_shared_hit(self):
        m = make()
        m.load_latency(0, 3)
        assert m.load_latency(1, 3) == LatencyConfig().shared_hit

    def test_store_to_shared_line_pays_invalidation(self):
        m = make()
        m.load_latency(0, 3)
        m.load_latency(1, 3)
        assert m.store_latency(0, 3) == LatencyConfig().invalidation

    def test_store_hit_when_exclusive(self):
        m = make()
        m.store_latency(0, 3)
        assert m.store_latency(0, 3) == LatencyConfig().l1_hit

    def test_store_invalidates_readers(self):
        m = make()
        m.load_latency(1, 3)
        m.store_latency(0, 3)
        assert m.load_latency(1, 3) == LatencyConfig().shared_hit

    def test_reset_forgets_state(self):
        m = make()
        m.load_latency(0, 3)
        m.reset()
        assert m.load_latency(0, 3) == LatencyConfig().miss


class TestFalseSharing:
    def test_different_words_same_line_contend(self):
        m = make(words_per_line=4)
        m.store_latency(0, 0)
        # word 1 shares line 0: the second core's store pays a transfer
        assert m.store_latency(1, 1) > LatencyConfig().l1_hit

    def test_no_false_sharing_without_colocation(self):
        m = make(words_per_line=1)
        m.store_latency(0, 0)
        assert m.store_latency(1, 1) == LatencyConfig().miss


class TestNoise:
    def test_jitter_scales_with_latency(self):
        cfg = LatencyConfig(jitter=0.5, hiccup_prob=0.0)
        m = ContentionModel(MemoryLayout(4, 1), random.Random(2), cfg)
        miss = m.load_latency(0, 0)
        assert LatencyConfig().miss <= miss <= LatencyConfig().miss * 1.5

    def test_hiccups_add_long_stalls(self):
        cfg = LatencyConfig(jitter=0.0, hiccup_prob=1.0, hiccup_cycles=100)
        m = ContentionModel(MemoryLayout(4, 1), random.Random(3), cfg)
        assert m.load_latency(0, 0) >= LatencyConfig().miss + 50

    def test_core_speed_multiplier(self):
        m = ContentionModel(MemoryLayout(4, 1), random.Random(4),
                            LatencyConfig(jitter=0.0, hiccup_prob=0.0),
                            core_speed={1: 2.0})
        fast = m.load_latency(0, 0)
        m.reset()
        slow = m.load_latency(1, 0)
        assert slow == 2.0 * fast


class TestUniformModel:
    def test_unit_latencies(self):
        u = UniformModel()
        assert u.load_latency(0, 0) == 1.0
        assert u.store_latency(3, 7) == 1.0
        assert u.private_store_latency(1) == 1.0
        u.reset()   # no-op, no crash
