"""Unit tests for the campaign harness and reporting."""

import pytest

from repro.harness import (
    Campaign,
    SortCostModel,
    format_bar_chart,
    format_table,
    run_and_check,
)
from repro.sim.detailed import DetailedExecutor
from repro.testgen import TestConfig


@pytest.fixture
def campaign_and_result():
    cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20, addresses=8, seed=5)
    campaign = Campaign(config=cfg, seed=2)
    return campaign, campaign.run(120)


class TestCampaign:
    def test_requires_program_or_config(self):
        with pytest.raises(ValueError):
            Campaign()

    def test_signature_counts_sum_to_iterations(self, campaign_and_result):
        _, result = campaign_and_result
        assert sum(result.signature_counts.values()) == 120
        assert result.iterations == 120

    def test_representatives_match_signatures(self, campaign_and_result):
        campaign, result = campaign_and_result
        for sig, execution in result.representatives.items():
            assert campaign.codec.encode(execution.rf) == sig

    def test_decode_recovers_representative_rf(self, campaign_and_result):
        """Algorithm 1 reconstructs exactly what was observed."""
        campaign, result = campaign_and_result
        for sig, execution in result.representatives.items():
            assert campaign.codec.decode(sig) == execution.rf

    def test_sorted_signatures_ascending(self, campaign_and_result):
        _, result = campaign_and_result
        sigs = result.sorted_signatures()
        assert sigs == sorted(sigs)

    def test_check_outcome_no_violations(self, campaign_and_result):
        campaign, result = campaign_and_result
        outcome = campaign.check(result)
        assert not outcome.collective.violations
        assert not outcome.baseline.violations
        assert [v.violation for v in outcome.collective.verdicts] == \
               [v.violation for v in outcome.baseline.verdicts]
        assert len(outcome.signatures) == result.unique_signatures

    def test_cycle_accounting_accumulates(self, campaign_and_result):
        _, result = campaign_and_result
        assert result.base_cycles > 0
        assert result.instrumentation_cycles > 0
        assert result.signature_sort_cycles > 0

    def test_flush_mode_has_no_sort_cost(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20, addresses=8, seed=5)
        campaign = Campaign(config=cfg, seed=2, instrumentation="flush")
        result = campaign.run(30)
        assert result.signature_sort_cycles == 0
        assert result.extra_accesses == 30 * len(campaign.program.loads)

    def test_run_and_check_convenience(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=15, addresses=8, seed=9)
        campaign, result, outcome = run_and_check(cfg, 40)
        assert result.iterations == 40
        assert outcome.violating_signatures == []

    def test_campaign_with_detailed_executor(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=10, addresses=4, seed=9)
        campaign = Campaign(config=cfg, seed=1, executor_cls=DetailedExecutor)
        result = campaign.run(20)
        outcome = campaign.check(result)
        assert not outcome.collective.violations

    def test_os_model_flag(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=15, addresses=8, seed=5)
        campaign = Campaign(config=cfg, seed=2, os_model=True)
        result = campaign.run(30)
        assert result.iterations == 30


class TestSortCostModel:
    def test_cost_grows_with_tree_size(self):
        m = SortCostModel()
        assert m.insert_cost(1000, 1) > m.insert_cost(2, 1)

    def test_cost_grows_with_signature_words(self):
        m = SortCostModel()
        assert m.insert_cost(100, 8) > m.insert_cost(100, 1)

    def test_minimum_one_comparison(self):
        assert SortCostModel().insert_cost(0, 1) > 0

    def test_defaults_pinned(self):
        m = SortCostModel()
        assert (m.cycles_per_comparison, m.word_compare_cost,
                m.bucket_touch_cost) == (22.0, 2.0, 6.0)

    def test_bucket_insert_cost_pinned(self):
        # tree-size independent: one touch + one compare per word
        m = SortCostModel()
        assert m.bucket_insert_cost(4) == 4 * (6.0 + 2.0)
        assert m.bucket_insert_cost(1) == 8.0
        # degenerate zero-word signatures still pay one slot
        assert m.bucket_insert_cost(0) == 8.0

    def test_bucket_insert_cheaper_than_tree_for_large_trees(self):
        m = SortCostModel()
        assert m.bucket_insert_cost(4) < m.insert_cost(1000, 4)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_float_rendering(self):
        text = format_table(["v"], [[0.1234], [12.34], [1234.5], [0.0]])
        assert "0.123" in text and "12.3" in text and "1234" in text

    def test_format_bar_chart(self):
        text = format_bar_chart(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_format_bar_chart_empty(self):
        assert format_bar_chart([], []) == ""
