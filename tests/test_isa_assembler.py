"""Unit tests for the textual assembler."""

import pytest

from repro.errors import ProgramError
from repro.isa import assemble, disassemble
from repro.testgen import TestConfig, generate

SAMPLE = """
.addresses 4
thread 0:
  st [0x1] #1
  ld [0x2]
  barrier
thread 1:
  st [2] #2
"""


class TestAssemble:
    def test_basic_parse(self):
        p = assemble(SAMPLE)
        assert p.num_threads == 2
        assert p.num_addresses == 4
        assert p.threads[0].ops[0].describe() == "st [0x1] #1"
        assert p.threads[0].ops[2].is_barrier

    def test_decimal_and_hex_addresses(self):
        p = assemble(SAMPLE)
        assert p.threads[1].ops[0].addr == 2

    def test_comment_lines_ignored(self):
        p = assemble("# a comment\n.addresses 2\nthread 0:\n  ld [0]\n")
        assert p.num_ops == 1

    def test_missing_addresses_directive(self):
        with pytest.raises(ProgramError):
            assemble("thread 0:\n  ld [0]\n")

    def test_ops_outside_thread_rejected(self):
        with pytest.raises(ProgramError):
            assemble(".addresses 2\nld [0]\n")

    def test_threads_must_be_in_order(self):
        with pytest.raises(ProgramError):
            assemble(".addresses 2\nthread 1:\n  ld [0]\n")

    def test_unparsable_line(self):
        with pytest.raises(ProgramError):
            assemble(".addresses 2\nthread 0:\n  frobnicate\n")

    def test_empty_input(self):
        with pytest.raises(ProgramError):
            assemble("")


class TestRoundTrip:
    def test_sample_roundtrip(self):
        p = assemble(SAMPLE, name="s")
        again = assemble(disassemble(p), name="s")
        assert disassemble(again) == disassemble(p)

    def test_generated_program_roundtrip(self):
        p = generate(TestConfig(threads=3, ops_per_thread=15, addresses=8, seed=3))
        again = assemble(disassemble(p))
        assert [op.describe() for op in again.all_ops] == \
               [op.describe() for op in p.all_ops]
        assert again.num_addresses == p.num_addresses
