"""SpanTracer misuse and hand-off survival tests (satellite of obs v2).

The tracer must stay consistent when spans are closed out of order or
twice (generator-held spans, finally-block double closes), and worker
span trees must survive the fleet hand-off — including the crash path,
which ships no tree at all.
"""

from repro import obs
from repro.fleet import FleetConfig, FleetSupervisor, WorkerTask
from repro.fleet.worker import STATE_SCHEMA, STATE_VERSION
from repro.obs.span import SpanTracer

TASK = WorkerTask(program_doc={"name": "stub", "listing": ""},
                  blocks=((0, 10),))


class TestOutOfOrderClose:
    def test_overlapping_exit_drops_through_cleanly(self):
        tracer = SpanTracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        assert tracer.depth() == 2
        # misuse: the OUTER span closes first (e.g. a generator that
        # owns it was garbage collected) — the stack drops through to
        # it instead of corrupting
        outer.__exit__(None, None, None)
        assert tracer.depth() == 0
        # the late inner exit is a harmless no-op on the stack
        inner.__exit__(None, None, None)
        assert tracer.depth() == 0
        # both recorded, inner nested under outer as opened
        assert tracer.node("outer").count == 1
        assert tracer.node("outer", "inner").count == 1

    def test_tracer_usable_after_out_of_order_close(self):
        tracer = SpanTracer()
        a, b = tracer.span("a"), tracer.span("b")
        a.__enter__()
        b.__enter__()
        a.__exit__(None, None, None)
        b.__exit__(None, None, None)
        with tracer.span("after"):
            pass
        # "after" is a fresh root, not a child of the mis-closed spans
        assert {n["name"] for n in tracer.tree()} == {"a", "b", "after"}
        assert tracer.node("after").count == 1
        assert tracer.node("a", "after") is None
        assert tracer.node("b", "after") is None

    def test_double_exit_does_not_corrupt_the_stack(self):
        tracer = SpanTracer()
        span = tracer.span("once")
        span.__enter__()
        span.__exit__(None, None, None)
        span.__exit__(None, None, None)      # double close: stack no-op
        assert tracer.depth() == 0
        with tracer.span("later"):
            assert tracer.depth() == 1
        assert tracer.depth() == 0


class TestHandoffSurvival:
    @staticmethod
    def _worker_with_spans(task, conn):
        tracer = SpanTracer()
        with tracer.span("execute"):
            with tracer.span("iteration"):
                pass
        state = {"schema": STATE_SCHEMA, "version": STATE_VERSION,
                 "metrics": {}, "events": {"schema": "repro.events",
                                           "version": 1, "events": []},
                 "spans": tracer.tree()}
        conn.send(("ok", "payload", state))
        conn.close()

    def test_worker_spans_fold_into_host_tree(self):
        with obs.enabled_obs() as handle:
            supervisor = FleetSupervisor(FleetConfig(jobs=1),
                                         target=self._worker_with_spans)
            outcome, = supervisor.run([TASK])
            assert not outcome.crashed
            assert handle.tracer.node("execute").count == 1
            assert handle.tracer.node("execute", "iteration").count == 1
            # host-side supervision spans coexist with absorbed ones
            assert handle.tracer.node("fleet.shard") is not None

    def test_two_workers_aggregate_same_named_phases(self):
        with obs.enabled_obs() as handle:
            supervisor = FleetSupervisor(FleetConfig(jobs=2),
                                         target=self._worker_with_spans)
            tasks = [WorkerTask(program_doc=TASK.program_doc,
                                blocks=((i, 10),)) for i in range(2)]
            outcomes = supervisor.run(tasks)
            assert all(not o.crashed for o in outcomes)
            assert handle.tracer.node("execute").count == 2
            assert handle.tracer.node("execute", "iteration").count == 2

    def test_crashed_worker_leaves_tracer_consistent(self):
        import os

        def dying(task, conn):
            os._exit(3)

        with obs.enabled_obs() as handle:
            supervisor = FleetSupervisor(FleetConfig(jobs=1, max_retries=0),
                                         target=dying)
            outcome, = supervisor.run([TASK])
            assert outcome.crashed
            # nothing was absorbed from the dead worker...
            assert handle.tracer.node("execute") is None
            # ...the host's own spans closed, and the tracer still works
            assert handle.tracer.depth() == 0
            assert handle.tracer.node("fleet.shard").count == 1
            with handle.span("post-crash"):
                pass
            assert handle.tracer.node("post-crash").count == 1

    def test_legacy_bare_metrics_handoff_still_absorbs(self):
        def legacy(task, conn):
            conn.send(("ok", "payload",
                       {"legacy.counter": {"type": "counter", "value": 4}}))
            conn.close()

        with obs.enabled_obs() as handle:
            supervisor = FleetSupervisor(FleetConfig(jobs=1), target=legacy)
            outcome, = supervisor.run([TASK])
            assert not outcome.crashed
            assert handle.metrics.get("legacy.counter").value == 4
