"""CLI tests for the repro.obs v2 surface: run artifacts, stats on
event logs, the trace/events/bench commands."""

import json
import pathlib

import pytest

from repro import obs
from repro.cli import main
from repro.obs.traceviz import trace_span_names, validate_trace

RESULTS_DIR = str(pathlib.Path(__file__).parent.parent
                  / "benchmarks" / "results")

RUN_ARGS = ["run", "--threads", "2", "--ops", "10", "--addresses", "8",
            "--iterations", "40"]


@pytest.fixture(autouse=True)
def _reset_observability():
    """CLI commands install a global obs instance; isolate each test."""
    yield
    obs.disable()


def run_with_artifacts(tmp_path, *extra):
    report_path = tmp_path / "report.json"
    events_path = tmp_path / "events.jsonl"
    trace_path = tmp_path / "trace.json"
    code = main(RUN_ARGS + ["--metrics-out", str(report_path),
                            "--events-out", str(events_path),
                            "--trace-out", str(trace_path), *extra])
    assert code == 0
    return report_path, events_path, trace_path


class TestRunArtifacts:
    def test_trace_out_matches_report_span_tree(self, tmp_path, capsys):
        report_path, _events, trace_path = run_with_artifacts(tmp_path)
        out = capsys.readouterr().out
        assert "trace written to" in out and "perfetto" in out
        trace = json.loads(trace_path.read_text())
        validate_trace(trace)
        report = obs.read_report(str(report_path))
        # acceptance: the trace's span slices ARE the report phase tree
        assert trace_span_names(trace) == obs.span_names(report)

    def test_events_out_is_a_parseable_run_log(self, tmp_path, capsys):
        from repro.obs.events import read_events

        _report, events_path, _trace = run_with_artifacts(tmp_path)
        events = read_events(events_path)
        kinds = {e.kind for e in events}
        assert {"campaign.plan", "block.done", "campaign.result"} <= kinds
        assert all(e.scope == "run" for e in events)    # serial: no host

    def test_fleet_trace_includes_shard_slices(self, tmp_path, capsys):
        _r, _e, trace_path = run_with_artifacts(tmp_path, "--jobs", "2",
                                                "--block", "20")
        trace = json.loads(trace_path.read_text())
        validate_trace(trace)
        shard_slices = [e for e in trace["traceEvents"]
                        if e.get("cat") == "shard"]
        assert len(shard_slices) == 2

    def test_progress_needs_jobs(self, capsys):
        assert main(RUN_ARGS + ["--progress"]) == 0
        assert "--jobs" in capsys.readouterr().err

    def test_progress_renders_on_fleet_runs(self, capsys):
        assert main(RUN_ARGS + ["--progress", "--jobs", "2",
                                "--block", "10"]) == 0
        err = capsys.readouterr().err
        assert "fleet" in err and "it/s" in err


class TestStats:
    def test_stats_renders_event_logs(self, tmp_path, capsys):
        _r, events_path, _t = run_with_artifacts(tmp_path)
        capsys.readouterr()
        assert main(["stats", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign.result" in out

    def test_stats_validate_recognizes_both_kinds(self, tmp_path, capsys):
        report_path, events_path, _t = run_with_artifacts(tmp_path)
        capsys.readouterr()
        assert main(["stats", "--validate", str(report_path)]) == 0
        assert "valid repro.run-report report" \
               in capsys.readouterr().out
        assert main(["stats", "--validate", str(events_path)]) == 0
        assert "valid repro.events event log" in capsys.readouterr().out

    def test_stats_exit_2_on_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_exit_2_on_schema_mismatch(self, tmp_path, capsys):
        future_report = tmp_path / "future.json"
        future_report.write_text(json.dumps(
            {"schema": "repro.run-report", "version": 99, "meta": {},
             "summary": {}, "metrics": {}, "spans": []}))
        assert main(["stats", str(future_report)]) == 2
        err = capsys.readouterr().err
        assert "version" in err and "99" in err

        future_event = tmp_path / "future.jsonl"
        future_event.write_text(json.dumps(
            {"v": 7, "seq": 0, "ts": 0.0, "kind": "campaign.plan",
             "scope": "run", "data": {}}) + "\n")
        assert main(["stats", str(future_event)]) == 2
        assert "version 7" in capsys.readouterr().err


class TestTraceCommand:
    def test_converts_report_and_event_log(self, tmp_path, capsys):
        report_path, events_path, _t = run_with_artifacts(tmp_path)
        capsys.readouterr()
        out_a = tmp_path / "a.json"
        assert main(["trace", str(report_path), "-o", str(out_a)]) == 0
        assert "run report" in capsys.readouterr().out
        validate_trace(json.loads(out_a.read_text()))
        out_b = tmp_path / "b.json"
        assert main(["trace", str(events_path), "-o", str(out_b)]) == 0
        assert "event log" in capsys.readouterr().out
        validate_trace(json.loads(out_b.read_text()))

    def test_exit_2_on_invalid_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["trace", str(bad),
                     "-o", str(tmp_path / "out.json")]) == 2


class TestEventsCommand:
    def test_table_and_markdown(self, capsys):
        assert main(["events"]) == 0
        out = capsys.readouterr().out
        assert "campaign.result" in out and "fleet.heartbeat" in out
        assert main(["events", "--markdown"]) == 0
        md = capsys.readouterr().out
        assert "### `campaign.result`" in md


class TestBenchCommands:
    BASELINE = {"configs": {"A": {"graphs": 10, "check_ms": 100.0}}}

    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_diff_detects_synthetic_regression(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASELINE)
        worse = self._write(tmp_path / "cur.json",
                            {"configs": {"A": {"graphs": 10,
                                               "check_ms": 120.0}}})
        assert main(["bench", "diff", base, worse]) == 1
        out = capsys.readouterr().out
        assert "1.20x" in out
        assert "BENCH REGRESSION: 1 regressed leaves, 0 shape changes" \
               in out

    def test_diff_passes_on_identical_snapshots(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASELINE)
        same = self._write(tmp_path / "same.json", self.BASELINE)
        assert main(["bench", "diff", base, same]) == 0
        assert "bench diff ok" in capsys.readouterr().out

    def test_diff_json_output(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASELINE)
        worse = self._write(tmp_path / "cur.json",
                            {"configs": {"A": {"graphs": 9,
                                               "check_ms": 100.0}}})
        assert main(["bench", "diff", "--json", base, worse]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["failed"] is True
        assert doc["deltas"][0]["key"] == "configs.A.graphs"

    def test_check_passes_on_committed_snapshots(self, capsys):
        assert main(["bench", "diff", "--check",
                     "--results", RESULTS_DIR]) == 0
        assert "bench diff ok" in capsys.readouterr().out

    def test_bad_argument_combinations_exit_2(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASELINE)
        assert main(["bench", "diff"]) == 2
        assert main(["bench", "diff", "--check", base, base]) == 2

    def test_record_appends_history(self, tmp_path, capsys):
        snap = self._write(tmp_path / "snap.json", self.BASELINE)
        history = tmp_path / "history.jsonl"
        assert main(["bench", "record", snap, "--history", str(history),
                     "--note", "test"]) == 0
        assert "recorded" in capsys.readouterr().out
        (entry,) = [json.loads(line) for line
                    in history.read_text().splitlines()]
        assert entry["note"] == "test"
        assert entry["digest"]["count_leaves"] == 1
