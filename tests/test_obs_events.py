"""Unit tests for the structured event plane (repro.obs.events)."""

import json

import pytest

from repro import obs
from repro.obs.events import (
    EVENT_KINDS,
    HOST,
    RUN,
    SCHEMA,
    SCHEMA_VERSION,
    EventLog,
    EventSchemaError,
    NullEventLog,
    event_from_dict,
    events_markdown,
    events_table,
    read_events,
    render_events,
)


class TestKindRegistry:
    def test_every_kind_has_scope_doc_and_fields(self):
        assert EVENT_KINDS
        for kind in EVENT_KINDS.values():
            assert kind.scope in (RUN, HOST)
            assert kind.doc
            assert kind.fields
            for field, doc in kind.fields:
                assert field and doc

    def test_core_lifecycle_kinds_registered(self):
        for name in ("campaign.plan", "block.done", "campaign.result",
                     "lint.gate", "check.batch", "shard.launch",
                     "shard.done", "shard.crash", "fleet.heartbeat",
                     "fleet.merge", "mutate.seed", "mutate.campaign"):
            assert name in EVENT_KINDS

    def test_scopes_partition_as_designed(self):
        assert EVENT_KINDS["block.done"].scope == RUN
        assert EVENT_KINDS["check.batch"].scope == RUN
        assert EVENT_KINDS["shard.launch"].scope == HOST
        assert EVENT_KINDS["fleet.heartbeat"].scope == HOST


class TestEventLog:
    def test_emit_assigns_seq_ts_scope(self):
        log = EventLog()
        event = log.emit("campaign.plan", iterations=10, blocks=2)
        assert event.seq == 0
        assert event.ts > 0
        assert event.scope == RUN
        assert event.data == {"iterations": 10, "blocks": 2}
        assert len(log) == 1

    def test_unregistered_kind_raises(self):
        with pytest.raises(ValueError, match="unregistered event kind"):
            EventLog().emit("no.such.kind", x=1)

    def test_counts(self):
        log = EventLog()
        log.emit("campaign.plan", iterations=1, blocks=1)
        log.emit("block.done", block=0, iterations=1, crashes=0,
                 signature_asserts=0)
        log.emit("block.done", block=1, iterations=1, crashes=0,
                 signature_asserts=0)
        assert log.counts() == {"block.done": 2, "campaign.plan": 1}

    def test_multiset_excludes_other_scope_and_timestamps(self):
        log = EventLog()
        log.emit("campaign.plan", iterations=5, blocks=1)
        log.emit("shard.launch", shard=0, attempt=1, iterations=5)
        ms = log.multiset(RUN)
        assert sum(ms.values()) == 1
        ((kind, payload), count), = ms.items()
        assert kind == "campaign.plan" and count == 1
        assert json.loads(payload) == {"iterations": 5, "blocks": 1}

    def test_multiset_none_scope_takes_everything(self):
        log = EventLog()
        log.emit("campaign.plan", iterations=5, blocks=1)
        log.emit("shard.launch", shard=0, attempt=1, iterations=5)
        assert sum(log.multiset(None).values()) == 2


class TestExportAbsorb:
    def _sample_log(self):
        log = EventLog()
        log.emit("campaign.plan", iterations=4, blocks=2)
        log.emit("block.done", block=0, iterations=2, crashes=0,
                 signature_asserts=0)
        return log

    def test_roundtrip_preserves_payloads_and_ts(self):
        source = self._sample_log()
        sink = EventLog()
        sink.emit("shard.launch", shard=0, attempt=1, iterations=4)
        sink.absorb_state(source.export_state())
        assert len(sink) == 3
        absorbed = sink.events()[1:]
        for original, copy in zip(source.events(), absorbed):
            assert copy.kind == original.kind
            assert copy.data == original.data
            assert copy.ts == original.ts       # wall ts preserved
        # but re-sequenced into the sink's append order
        assert [e.seq for e in sink.events()] == [0, 1, 2]

    def test_absorb_merges_multisets(self):
        a, b = self._sample_log(), self._sample_log()
        merged = EventLog()
        merged.absorb_state(a.export_state())
        merged.absorb_state(b.export_state())
        assert merged.multiset(RUN) == a.multiset(RUN) + b.multiset(RUN)

    def test_absorb_rejects_foreign_state(self):
        with pytest.raises(EventSchemaError):
            EventLog().absorb_state({"schema": "something.else"})
        with pytest.raises(EventSchemaError):
            EventLog().absorb_state({"schema": SCHEMA, "version": 99})

    def test_export_is_self_describing(self):
        state = self._sample_log().export_state()
        assert state["schema"] == SCHEMA
        assert state["version"] == SCHEMA_VERSION
        assert len(state["events"]) == 2


class TestSerialization:
    def test_jsonl_roundtrip(self, tmp_path):
        log = EventLog()
        log.emit("campaign.plan", iterations=3, blocks=1)
        log.emit("campaign.result", iterations=3, unique_signatures=2,
                 crashes=0, skipped_iterations=0, signature_asserts=0)
        path = tmp_path / "events.jsonl"
        log.write_jsonl(path)
        events = read_events(path)
        assert [e.kind for e in events] == ["campaign.plan",
                                           "campaign.result"]
        assert events[1].data["unique_signatures"] == 2

    def test_concatenated_shard_logs_parse(self, tmp_path):
        a, b = EventLog(), EventLog()
        a.emit("campaign.plan", iterations=1, blocks=1)
        b.emit("campaign.plan", iterations=2, blocks=1)
        path = tmp_path / "cat.jsonl"
        path.write_text(a.to_jsonl() + b.to_jsonl())
        assert len(read_events(path)) == 2

    def test_read_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "seq": 0}\n')
        with pytest.raises(EventSchemaError, match="bad.jsonl:1"):
            read_events(path)
        path.write_text("not json\n")
        with pytest.raises(EventSchemaError, match="not valid JSON"):
            read_events(path)

    def test_version_mismatch_message_names_versions(self):
        with pytest.raises(EventSchemaError, match="version 9"):
            event_from_dict({"v": 9, "seq": 0, "ts": 0.0,
                             "kind": "campaign.plan", "scope": RUN,
                             "data": {}})

    def test_record_field_validation(self):
        good = {"v": SCHEMA_VERSION, "seq": 0, "ts": 1.5,
                "kind": "campaign.plan", "scope": RUN, "data": {"a": 1}}
        event = event_from_dict(good)
        assert event.data == {"a": 1}
        for field in ("seq", "ts", "kind", "scope", "data"):
            broken = dict(good)
            del broken[field]
            with pytest.raises(EventSchemaError):
                event_from_dict(broken)


class TestNullEventLog:
    def test_is_a_complete_noop_twin(self, tmp_path):
        null = NullEventLog()
        assert null.emit("campaign.plan", iterations=1, blocks=1) is None
        assert null.events() == [] and len(null) == 0
        assert null.counts() == {} and not null.multiset()
        assert null.export_state()["events"] == []
        null.absorb_state({"schema": "whatever"})    # silently ignored
        path = tmp_path / "null.jsonl"
        null.write_jsonl(path)
        assert path.read_text() == ""

    def test_disabled_obs_hands_out_null_log(self):
        handle = obs.Observability(enabled=False)
        handle.emit("campaign.plan", iterations=1, blocks=1)
        assert len(handle.events) == 0

    def test_enabled_obs_records_and_reset_clears(self):
        handle = obs.Observability(enabled=True)
        handle.emit("campaign.plan", iterations=1, blocks=1)
        assert len(handle.events) == 1
        handle.reset()
        assert len(handle.events) == 0


class TestRendering:
    def test_render_events_lists_kinds(self):
        log = EventLog()
        log.emit("campaign.plan", iterations=1, blocks=1)
        log.emit("block.done", block=0, iterations=1, crashes=0,
                 signature_asserts=0)
        text = render_events(log.events())
        assert "campaign.plan" in text and "block.done" in text
        assert render_events([]) == "(empty event log)"

    def test_events_table_covers_registry(self):
        text = events_table()
        for name in EVENT_KINDS:
            assert name in text

    def test_markdown_documents_every_kind_and_field(self):
        text = events_markdown()
        for kind in EVENT_KINDS.values():
            assert "### `%s`" % kind.name in text
            for field, _ in kind.fields:
                assert "`%s`" % field in text
        assert text.endswith("\n")
