"""End-to-end pins of the paper's three gem5 bugs through the full
pipeline (Section 7): generation -> instrumentation -> detailed MESI
simulation -> collective checking, driven by the same sensitivity
campaigns the operational mutations use.

* bugs 1 and 2 must yield a checker violation within their pinned
  seed/iteration budgets;
* bug 3 must surface as campaign *crash* outcomes (every paper bug-3
  run died before shipping a signature), including via the fleet path.
"""

import pytest

from repro.harness import Campaign
from repro.mutate import get_mutation
from repro.mutate.campaign import SensitivityCampaign
from repro.sim.faults import Bug


class TestLoadLoadBugs:
    def test_bug1_protocol_squash_detected_within_budget(self):
        m = get_mutation(Bug.LOAD_LOAD_PROTOCOL.mutation_name)
        outcome = SensitivityCampaign(m, control=False).run()
        assert outcome.detected
        assert outcome.channels == ["violation"]
        assert outcome.max_executions_to_detection <= m.spec.budget

    def test_bug2_lsq_squash_detected_within_budget(self):
        # one pinned seed keeps the gate fast; the full two-seed spec
        # runs in benchmarks/bench_mutate.py
        m = get_mutation(Bug.LOAD_LOAD_LSQ.mutation_name)
        outcome = SensitivityCampaign(m, seeds=1, control=False).run()
        assert outcome.detected
        assert outcome.channels == ["violation"]
        assert outcome.max_executions_to_detection <= m.spec.budget

    def test_loadload_specs_check_with_observed_ws(self):
        for bug in (Bug.LOAD_LOAD_PROTOCOL, Bug.LOAD_LOAD_LSQ):
            assert get_mutation(bug.mutation_name).spec.ws_mode == "observed"


class TestCrashBug:
    def test_bug3_surfaces_as_crash_channel(self):
        m = get_mutation(Bug.WRITEBACK_RACE.mutation_name)
        outcome = SensitivityCampaign(m, control=False).run()
        assert outcome.detected
        assert outcome.channels == ["crash"]
        for seed in outcome.seeds:
            assert seed.crashes > 0
            assert seed.unique_signatures == 0

    def test_bug3_crashes_survive_the_fleet_path(self):
        m = get_mutation("gem5-writeback-race")
        campaign = Campaign(config=m.spec.config, seed=0, mutation=m)
        result = campaign.run(16, jobs=2, block=8)
        assert result.crashes == 16
        assert result.unique_signatures == 0


class TestRegistryBridge:
    def test_every_paper_bug_campaigns_through_the_registry(self):
        for bug in Bug:
            m = get_mutation(bug.mutation_name)
            assert m.bug is bug
            assert m.fault_config().bug is bug

    def test_detailed_mutation_on_arm_config_is_rejected(self):
        from repro.errors import ReproError
        from repro.testgen import TestConfig

        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=10, addresses=4)
        with pytest.raises(ReproError, match="x86 only"):
            Campaign(config=cfg, mutation="gem5-lsq-squash")
