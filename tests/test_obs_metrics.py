"""Unit tests for the observability metric primitives and registry."""

import math
import random

import pytest

from repro import obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_snapshot(self):
        c = Counter()
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3.5)
        g.set(-2)
        assert g.value == -2
        assert g.snapshot() == {"type": "gauge", "value": -2}


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["p99"] == 0.0

    def test_count_sum_min_max_mean_exact(self):
        h = Histogram()
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 1.0 and h.max == 7.0
        assert h.mean == 4.0

    def test_single_sample_quantiles_are_exact(self):
        h = Histogram()
        h.observe(42.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == pytest.approx(42.0, rel=0.05)

    def test_uniform_distribution_quantiles(self):
        h = Histogram()
        rng = random.Random(7)
        for _ in range(20_000):
            h.observe(rng.uniform(0.0, 1000.0))
        assert h.quantile(0.50) == pytest.approx(500.0, rel=0.05)
        assert h.quantile(0.95) == pytest.approx(950.0, rel=0.05)
        assert h.quantile(0.99) == pytest.approx(990.0, rel=0.05)

    def test_exponential_distribution_quantiles(self):
        h = Histogram()
        rng = random.Random(11)
        for _ in range(20_000):
            h.observe(rng.expovariate(1.0))
        # analytic quantiles of Exp(1): -ln(1-q)
        assert h.quantile(0.50) == pytest.approx(math.log(2), rel=0.10)
        assert h.quantile(0.95) == pytest.approx(-math.log(0.05), rel=0.10)

    def test_wide_dynamic_range(self):
        h = Histogram()
        for exponent in range(12):          # 1, 10, ..., 1e11
            h.observe(10.0 ** exponent)
        assert h.quantile(0.0) == pytest.approx(1.0, rel=0.05)
        assert h.quantile(1.0) == pytest.approx(1e11, rel=0.05)

    def test_zero_samples_counted(self):
        h = Histogram()
        for _ in range(10):
            h.observe(0.0)
        h.observe(100.0)
        assert h.count == 11
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == pytest.approx(100.0, rel=0.05)

    def test_quantile_bounds_validated(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_growth_factor_validated(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.0)

    def test_no_raw_sample_retention(self):
        """Memory is bounded by the number of buckets, not samples."""
        h = Histogram()
        rng = random.Random(3)
        for _ in range(50_000):
            h.observe(rng.uniform(1.0, 100.0))
        assert len(h._buckets) < 200


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        reg.histogram("c").observe(3.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"]["type"] == "gauge"
        assert snap["b"] == {"type": "counter", "value": 2}
        assert snap["c"]["count"] == 1

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("one")
        assert reg.names() == ["one"]
        assert reg.get("one") is reg.counter("one")
        assert reg.get("absent") is None


class TestDisabledMode:
    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        c = reg.counter("a")
        c.inc(100)
        assert c.value == 0
        g = reg.gauge("b")
        g.set(9)
        assert g.value == 0.0
        h = reg.histogram("c")
        h.observe(5.0)
        assert h.count == 0 and h.quantile(0.99) == 0.0
        assert reg.snapshot() == {}
        assert len(reg) == 0

    def test_null_registry_shares_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")

    def test_global_disabled_instance_records_nothing(self):
        handle = obs.get_obs()
        assert not handle.enabled
        handle.counter("x.y").inc(5)
        with handle.span("phase"):
            pass
        assert handle.metrics.snapshot() == {}
        assert handle.tracer.tree() == []

    def test_disabled_span_still_measures_time(self):
        handle = obs.Observability(enabled=False)
        with handle.span("timed") as span:
            sum(range(1000))
        assert span.elapsed > 0.0

    def test_enabled_obs_context_restores_previous(self):
        before = obs.get_obs()
        with obs.enabled_obs() as handle:
            assert obs.get_obs() is handle
            assert handle.enabled
            handle.counter("k").inc()
            assert handle.metrics.snapshot()["k"]["value"] == 1
        assert obs.get_obs() is before
