"""CI sensitivity gate: the checker must catch every registered
operational mutation under its pinned campaign spec.

This is the suite's teeth — a checker regression that stops detecting
any mutation (or needs more executions than its calibrated budget)
fails here.  The detailed-simulator bugs have their own gate in
``test_mutate_detailed_bugs.py``.
"""

import pytest

from repro.mutate import operational_mutations
from repro.mutate.campaign import SensitivityCampaign

_OPERATIONAL = [m.name for m in operational_mutations()]


@pytest.mark.parametrize("name", _OPERATIONAL)
def test_mutation_detected_within_pinned_budget(name):
    outcome = SensitivityCampaign(name, control=False).run()
    assert outcome.detected, (
        "%s went undetected: rate %.2f over %d seeds (budget %d)"
        % (name, outcome.detection_rate, len(outcome.seeds),
           outcome.mutation.spec.budget))
    assert outcome.max_executions_to_detection <= outcome.mutation.spec.budget
    assert outcome.channels, name


def test_registry_exercises_both_detection_channels():
    """Across the operational matrix both non-crash channels must appear:
    wrong-value faults fire the instrumentation's assertion tail, pure
    ordering faults need a constraint-graph cycle."""
    channels = set()
    for name in ("tso-sb-forward-alias", "weak-fence-drop"):
        channels.update(SensitivityCampaign(
            name, control=False).run().channels)
    assert channels == {"assert", "violation"}


def test_mutated_machine_expands_signature_diversity():
    """Figure 12's observation: the buggy machine's interleaving set
    differs from the clean one — here the stale-read fault manufactures
    rf patterns the compliant machine cannot produce."""
    outcome = SensitivityCampaign("weak-stale-read", seeds=1,
                                  control=True).run()
    assert outcome.clean_unique_signatures is not None
    mutated = outcome.seeds[0]
    assert mutated.signature_asserts > 0 or \
        mutated.unique_signatures != outcome.clean_unique_signatures
