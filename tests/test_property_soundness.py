"""Soundness property: a fault-free machine never trips the checker.

The sensitivity suite (``test_mutate_sensitivity.py``) proves the
checker *catches* injected faults; this file proves the complementary
direction — with no mutation armed, random programs on every
operational memory model and on the detailed MESI simulator produce

* zero constraint-graph violations under BOTH checking pipelines
  (``graphs`` and ``delta``), in both ws modes where applicable, and
* zero signature asserts and zero crashes.

Together they bound the validator: sensitive to every registered fault,
silent on compliant machines.
"""

from hypothesis import given, settings, strategies as st

from repro.harness import Campaign, check_campaign_result
from repro.testgen import TestConfig


@st.composite
def campaign_case(draw):
    cfg = TestConfig(
        isa=draw(st.sampled_from(["x86", "arm"])),
        threads=draw(st.integers(2, 4)),
        ops_per_thread=draw(st.integers(4, 24)),
        addresses=draw(st.integers(2, 8)),
        words_per_line=draw(st.sampled_from([1, 4])),
        barrier_fraction=draw(st.sampled_from([0.0, 0.2])),
        seed=draw(st.integers(0, 50_000)),
    )
    return cfg, draw(st.integers(0, 1000))


@given(campaign_case())
@settings(max_examples=25, deadline=None)
def test_fault_free_campaigns_never_violate(case):
    cfg, seed = case
    campaign = Campaign(config=cfg, seed=seed)
    result = campaign.run(12)
    assert result.signature_asserts == 0
    assert result.crashes == 0
    for pipeline in ("graphs", "delta"):
        outcome = check_campaign_result(result, campaign.model,
                                        pipeline=pipeline)
        assert not outcome.collective.violations, pipeline
        assert not outcome.baseline.violations, pipeline


@given(campaign_case())
@settings(max_examples=10, deadline=None)
def test_fault_free_campaigns_clean_under_observed_ws(case):
    cfg, seed = case
    campaign = Campaign(config=cfg, seed=seed)
    result = campaign.run(10)
    outcome = check_campaign_result(result, campaign.model,
                                    ws_mode="observed")
    assert not outcome.collective.violations


def test_fault_free_detailed_simulator_is_clean():
    """The unmutated MESI simulator passes the same bar on the pinned
    bug configs (the very shapes tuned to provoke the injected bugs)."""
    from repro.mutate import detailed_mutations

    for m in detailed_mutations():
        campaign = Campaign(config=m.spec.config, seed=0)
        # no mutation: runs the operational machine; now swap in the
        # detailed simulator explicitly, fault-free
        from repro.sim.detailed import DetailedExecutor
        from repro.sim.faults import FaultConfig
        from repro.sim.platform import GEM5_X86_8CORE

        faults = FaultConfig(l1_lines=m.spec.l1_lines)
        campaign = Campaign(
            config=m.spec.config, seed=0, platform=GEM5_X86_8CORE,
            executor_cls=lambda *a, **kw: DetailedExecutor(
                *a, faults=faults, **kw))
        result = campaign.run(24)
        assert result.crashes == 0
        assert result.signature_asserts == 0
        outcome = check_campaign_result(result, campaign.model,
                                        ws_mode=m.spec.ws_mode,
                                        baseline=False)
        assert not outcome.collective.violations, m.name
