"""The poly pipeline: frontier-closure verification and its wiring.

Unit coverage for :mod:`repro.checker.poly` and the dispatcher:
rule-level equivalence against the independent feasible oracle on
exhaustively enumerable litmus outcome spaces, witness-cycle validity,
the four-way differential contract on real and violating campaigns
(via :mod:`tests.differential` — the shared fixture of the packed and
delta suites), the runner/stream wiring of ``--check-pipeline poly``
and ``auto``, and the cost-model dispatcher's invariants.
"""

import pytest

from repro import obs
from repro.checker import (
    CollectiveChecker,
    PolyChecker,
    PolySignatureSource,
    PolyVerifier,
    choose_pipeline,
    estimate_costs,
    violation_digest,
)
from repro.checker.results import COMPLETE
from repro.feasible import FeasibilityOracle
from repro.graph import GraphBuilder
from repro.harness import Campaign, check_campaign_result
from repro.instrument import SignatureCodec
from repro.mcm import get_model
from repro.sim import platform_for_isa
from repro.testgen import TestConfig, generate
from repro.testgen.litmus import all_litmus_tests
from tests.differential import (
    assert_differential_contract,
    every_rf,
    poly_report,
    reference_reports,
    run_unique_signatures,
)

#: litmus outcome spaces stay exhaustively enumerable below this
_ENUMERABLE = 4096


class TestVerifierRules:
    """The frontier closure decides the same predicate as the feasible
    oracle's graph-based membership test — proven by exhaustive
    enumeration over every encodable litmus outcome."""

    @pytest.mark.parametrize("model_name", ("sc", "tso", "weak"))
    def test_litmus_exhaustive_oracle_equivalence(self, model_name):
        model = get_model(model_name)
        for lt in all_litmus_tests():
            codec = SignatureCodec(lt.program, 64)
            if codec.cardinality > _ENUMERABLE:
                continue
            oracle = FeasibilityOracle(lt.program, model)
            verifier = PolyVerifier(lt.program, model)
            for rf in every_rf(codec):
                assert oracle.is_feasible(rf) == \
                    (not verifier.verify(rf).violation), (lt.name, rf)

    def test_choice_pairs_match_oracle(self, figure3_program):
        model = get_model("tso")
        oracle = FeasibilityOracle(figure3_program, model)
        verifier = PolyVerifier(figure3_program, model)
        codec = SignatureCodec(figure3_program, 64)
        for load_uid, sources in sorted(codec.candidates.items()):
            for source in sources:
                assert sorted(verifier.choice_pairs(load_uid, source)) == \
                    sorted(oracle.choice_pairs(load_uid, source))

    def test_static_skeleton_is_acyclic(self, small_program):
        verifier = PolyVerifier(small_program, get_model("weak"))
        for uid in range(verifier.num_ops):
            assert not (verifier._static_frontiers[uid] >> uid) & 1

    def test_witness_cycles_are_graph_cycles(self):
        model = get_model("sc")
        for lt in all_litmus_tests():
            codec = SignatureCodec(lt.program, 64)
            if codec.cardinality > _ENUMERABLE:
                continue
            verifier = PolyVerifier(lt.program, model)
            builder = GraphBuilder(lt.program, model, ws_mode="static")
            for rf in every_rf(codec):
                outcome = verifier.verify(rf)
                if not outcome.violation:
                    continue
                cycle = outcome.cycle
                assert cycle[0] == cycle[-1] and len(cycle) >= 3
                adjacency = builder.build(rf).adjacency
                for src, dst in zip(cycle, cycle[1:]):
                    assert dst in adjacency.get(src, ()), (lt.name, cycle)

    def test_violation_closure_terminates_and_saturates(self):
        """Cyclic fact systems must not loop: the frontiers saturate."""
        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=40,
                         addresses=8, seed=3)
        program, codec, signatures = run_unique_signatures(cfg, 100, seed=13)
        verifier = PolyVerifier(program, get_model("sc"))
        outcomes = [verifier.verify(codec.decode(sig))
                    for sig in signatures]
        assert any(o.violation for o in outcomes)
        for o in outcomes:
            assert o.unions >= 0 and o.dynamic_pairs > 0


class TestSignatureSource:
    def test_protocol_surface(self, small_program, small_codec):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=7)
        program, codec, signatures = run_unique_signatures(cfg, 60)
        source = PolySignatureSource(codec, get_model("weak"), signatures)
        assert len(source) == len(signatures)
        assert source.num_vertices == program.num_ops
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        for index in (0, len(signatures) - 1):
            assert source.full_graph(index).adjacency == \
                builder.build(codec.decode(signatures[index])).adjacency

    def test_plan_event_emitted(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=10,
                         addresses=4, seed=4)
        program, codec, signatures = run_unique_signatures(cfg, 20)
        with obs.enabled_obs() as handle:
            source = PolySignatureSource(codec, get_model("weak"),
                                         signatures)
        plans = [e for e in handle.events.events()
                 if e.kind == "checker.poly.plan"]
        assert len(plans) == 1
        assert plans[0].data["signatures"] == len(signatures)
        assert plans[0].data["static_pairs"] == \
            len(source.verifier.static_pairs)


class TestPolyChecker:
    def test_empty_block(self, small_codec):
        source = PolySignatureSource(small_codec, get_model("weak"), [])
        report = PolyChecker().check(source)
        assert report.num_graphs == 0
        assert violation_digest(report) == \
            violation_digest(CollectiveChecker().check([]))

    def test_report_shape_is_family_neutral(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=15,
                         addresses=6, seed=7)
        program, codec, signatures = run_unique_signatures(cfg, 60)
        model = platform_for_isa("x86").memory_model
        report, source = poly_report(program, codec, signatures, model)
        assert report.num_graphs == len(signatures)
        assert all(v.method == COMPLETE for v in report.verdicts)
        assert all(v.resorted_vertices == 0 for v in report.verdicts)
        assert report.sorted_vertices == 0
        assert source.stats["dynamic_pairs"] > 0

    def test_repeat_checks_replace_stats(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=15,
                         addresses=6, seed=5)
        program, codec, signatures = run_unique_signatures(cfg, 60)
        source = PolySignatureSource(codec, get_model("weak"), signatures)
        checker = PolyChecker()
        first = checker.check(source)
        stats = dict(source.stats)
        second = checker.check(source)
        assert source.stats == stats
        assert second.summary() == first.summary()

    def test_initial_key_is_interface_only(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=6)
        program, codec, signatures = run_unique_signatures(cfg, 100)
        source = PolySignatureSource(codec, get_model("weak"), signatures)
        keyed = PolyChecker(initial_key=lambda v: -v).check(source)
        plain = PolyChecker().check(source)
        assert keyed.summary() == plain.summary()


class TestFourWayContract:
    """The shared differential fixture, all four pipelines at once."""

    @pytest.mark.parametrize("isa", ["arm", "x86"])
    def test_clean_campaign(self, isa):
        cfg = TestConfig(isa=isa, threads=2, ops_per_thread=40,
                         addresses=16, seed=3)
        program, codec, signatures = run_unique_signatures(cfg, 400)
        model = platform_for_isa(isa).memory_model
        assert_differential_contract(program, codec, signatures, model,
                                     expect_violations=False)

    def test_violating_campaign(self):
        """ARM weak executions checked against SC: genuine violations
        must agree across both algorithm families, and every poly
        witness must render against the rebuilt graph."""
        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=40,
                         addresses=8, seed=3)
        program, codec, signatures = run_unique_signatures(cfg, 300, seed=13)
        assert_differential_contract(program, codec, signatures,
                                     get_model("sc"),
                                     expect_violations=True)

    def test_disagreement_is_caught(self):
        """The contract must actually bite: a corrupted poly verdict
        (one dropped rule family) flips the digest comparison."""
        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=40,
                         addresses=8, seed=3)
        program, codec, signatures = run_unique_signatures(cfg, 300, seed=13)
        model = get_model("sc")
        _, delta = reference_reports(program, codec, signatures, model)
        verifier = PolyVerifier(program, model)
        verifier._next_store = {}  # kill the from-read rule
        report, _ = poly_report(program, codec, signatures, model)
        report_digest = violation_digest(delta)
        crippled = [codec.decode(sig) for sig in signatures]
        crippled_violations = [i for i, rf in enumerate(crippled)
                               if verifier.verify(rf).violation]
        assert crippled_violations != report_digest["violations"]


class TestRunnerWiring:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        campaign = Campaign(config=TestConfig(
            isa="arm", threads=2, ops_per_thread=30, addresses=8, seed=9),
            seed=5)
        return campaign, campaign.run(250)

    def test_poly_outcome_agrees_with_delta(self, campaign_result):
        campaign, result = campaign_result
        poly = check_campaign_result(result, campaign.model,
                                     pipeline="poly")
        delta = check_campaign_result(result, campaign.model,
                                      pipeline="delta")
        assert poly.pipeline == "poly"
        assert violation_digest(poly.collective) == \
            violation_digest(delta.collective)
        assert poly.baseline.summary() == delta.baseline.summary()

    def test_poly_outcome_materializes_no_graphs(self, campaign_result):
        campaign, result = campaign_result
        outcome = check_campaign_result(result, campaign.model,
                                        pipeline="poly")
        assert outcome.graphs == []
        assert isinstance(outcome.source, PolySignatureSource)

    def test_graph_at_rebuilds_identical_graphs(self, campaign_result):
        campaign, result = campaign_result
        poly = check_campaign_result(result, campaign.model,
                                     pipeline="poly")
        legacy = check_campaign_result(result, campaign.model,
                                       pipeline="graphs")
        for index in range(len(poly.signatures)):
            assert poly.graph_at(index).adjacency == \
                legacy.graphs[index].adjacency

    def test_observed_ws_falls_back_to_graphs(self, campaign_result):
        campaign, result = campaign_result
        outcome = check_campaign_result(result, campaign.model,
                                        ws_mode="observed", pipeline="poly")
        assert outcome.pipeline == "graphs"
        assert outcome.graphs

    def test_rejects_unknown_pipeline(self, campaign_result):
        campaign, result = campaign_result
        with pytest.raises(ValueError):
            check_campaign_result(result, campaign.model,
                                  pipeline="polynomial")

    def test_poly_obs_counters_recorded(self, campaign_result):
        campaign, result = campaign_result
        with obs.enabled_obs() as handle:
            outcome = check_campaign_result(result, campaign.model,
                                            pipeline="poly")
        metrics = handle.metrics
        report = outcome.collective
        assert metrics.counter("checker.collective.graphs").value == \
            report.num_graphs
        assert metrics.counter("checker.poly.signatures").value == \
            len(outcome.source)
        assert metrics.counter("checker.poly.dynamic_pairs").value == \
            outcome.source.stats["dynamic_pairs"]

    def test_auto_resolves_and_agrees(self, campaign_result):
        campaign, result = campaign_result
        auto = check_campaign_result(result, campaign.model,
                                     pipeline="auto")
        delta = check_campaign_result(result, campaign.model,
                                      pipeline="delta")
        assert auto.pipeline in ("graphs", "delta", "packed", "poly")
        assert auto.pipeline != "auto"
        assert violation_digest(auto.collective) == \
            violation_digest(delta.collective)


class TestStreamFinalizeWiring:
    @pytest.fixture()
    def fed_checker(self):
        from repro.checker.stream import StreamingCollectiveChecker

        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=6)
        program, codec, signatures = run_unique_signatures(cfg, 150)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        checker = StreamingCollectiveChecker(codec, builder)
        for sig in signatures:
            checker.feed(sig)
        return checker

    def test_finalize_poly_agrees_with_delta(self, fed_checker):
        assert violation_digest(fed_checker.finalize(pipeline="poly")) == \
            violation_digest(fed_checker.finalize())

    def test_finalize_auto_matches_delta_summary(self, fed_checker):
        # auto resolves within the graph family (poly never wins the
        # cost model), so full byte parity must hold
        assert fed_checker.finalize(pipeline="auto").summary() == \
            fed_checker.finalize().summary()


class TestDispatch:
    def test_observed_ws_forces_graphs(self):
        assert choose_pipeline(100, 100, ws_mode="observed") == "graphs"

    def test_empty_block_stays_delta(self):
        assert choose_pipeline(0, 500) == "delta"

    def test_small_blocks_pick_delta(self):
        assert choose_pipeline(2, 40) == "delta"

    def test_large_blocks_pick_packed(self):
        assert choose_pipeline(500, 400) == "packed"

    def test_poly_is_never_the_fast_path(self):
        for signatures in (1, 10, 100, 1000):
            for vertices in (10, 100, 1000):
                assert choose_pipeline(signatures, vertices) != "poly"

    def test_costs_cover_every_batch_backend(self):
        costs = estimate_costs(10, 100)
        assert sorted(costs) == ["delta", "packed", "poly"]
        assert all(c > 0 for c in costs.values())
