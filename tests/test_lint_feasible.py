"""MTC10x feasible-set lints: rule firing conditions and engine wiring."""

import pytest

from repro.feasible import FeasibleSet
from repro.instrument import SignatureCodec
from repro.lint import LintConfig, lint_program
from repro.lint import feasible_lints, rules
from repro.mcm import get_model
from repro.testgen.litmus import all_litmus_tests


def _litmus(name):
    for lt in all_litmus_tests():
        if lt.name == name:
            return lt.program
    raise KeyError(name)


def _lint(name, model="tso", **kw):
    program = _litmus(name)
    codec = SignatureCodec(program, 64)
    return feasible_lints.lint_feasible(program, codec, get_model(model), **kw)


def _rules_of(findings):
    return [f.rule for f in findings]


class TestInfeasibleOutcomes:
    def test_mp_fires_mtc100(self):
        findings, fset = _lint("MP")
        assert "MTC100" in _rules_of(findings)
        [f] = [f for f in findings if f.rule == "MTC100"]
        assert "1 of 4" in f.message
        assert fset.feasible_count == 3

    def test_sb_all_feasible_under_tso_no_finding(self):
        findings, fset = _lint("SB")
        assert "MTC100" not in _rules_of(findings)
        assert fset.feasible_count == fset.cardinality == 4

    def test_sb_fires_under_sc(self):
        findings, _ = _lint("SB", model="sc")
        assert "MTC100" in _rules_of(findings)


class TestIneffectiveFence:
    def test_redundant_dmbs_under_tso(self):
        """TSO already orders st-st and ld-ld; MP's dmbs change nothing."""
        findings, _ = _lint("MP+dmbs")
        fences = [f for f in findings if f.rule == "MTC102"]
        assert len(fences) == 2
        assert all(f.uid is not None for f in fences)

    def test_effective_sb_fences_stay_silent(self):
        """SB's fences forbid the both-read-zero outcome: they matter."""
        findings, _ = _lint("SB+fences")
        assert "MTC102" not in _rules_of(findings)

    def test_mp_dmbs_effective_under_weak(self):
        findings, _ = _lint("MP+dmbs", model="weak")
        assert "MTC102" not in _rules_of(findings)

    def test_variant_builder_preserves_everything_else(self):
        program = _litmus("SB+fences")
        barrier = next(op for op in program.all_ops if op.is_barrier)
        variant = feasible_lints._without_barrier(program, barrier.uid)
        assert variant.name == program.name
        assert len(variant.all_ops) == len(program.all_ops) - 1
        assert not any(op.uid == barrier.uid and op.is_barrier
                       and op.thread == barrier.thread
                       for op in variant.all_ops if op.is_barrier)
        # candidate spaces correspond 1:1 (barriers don't add candidates)
        assert SignatureCodec(variant, 64).cardinality == \
            SignatureCodec(program, 64).cardinality


class TestSyntheticBranches:
    """Branch coverage via crafted FeasibleSets (monkeypatched)."""

    def _patched(self, monkeypatch, fset):
        monkeypatch.setattr(feasible_lints, "enumerate_feasible",
                            lambda *a, **kw: fset)
        program = _litmus("SB")
        codec = SignatureCodec(program, 64)
        return feasible_lints.lint_feasible(program, codec, get_model("tso"))

    def test_collapse_fires_mtc101(self, monkeypatch):
        fset = FeasibleSet("SB", "tso", 4, frozenset(["only"]), True, 4096)
        findings, _ = self._patched(monkeypatch, fset)
        assert _rules_of(findings).count("MTC101") == 1

    def test_empty_set_fires_mtc104(self, monkeypatch):
        fset = FeasibleSet("SB", "tso", 4, frozenset(), True, 4096)
        findings, _ = self._patched(monkeypatch, fset)
        assert _rules_of(findings) == ["MTC104"]

    def test_budget_exceeded_fires_mtc103_only(self, monkeypatch):
        fset = FeasibleSet("SB", "tso", 1 << 40, frozenset(["a", "b"]),
                           False, 4096, sampled=64)
        findings, _ = self._patched(monkeypatch, fset)
        assert _rules_of(findings) == ["MTC103"]

    def test_real_budget_exceeded_path(self):
        findings, fset = _lint("IRIW", budget=2, samples=4)
        assert _rules_of(findings) == ["MTC103"]
        assert not fset.exhaustive


class TestRuleRegistry:
    def test_mtc10x_registered_with_feasible_family(self):
        for rid in ("MTC100", "MTC101", "MTC102", "MTC103", "MTC104"):
            rule = rules.get_rule(rid)
            assert rule.family == "feasible"
        assert rules.get_rule("MTC100").severity == rules.Severity.INFO
        assert rules.get_rule("MTC102").severity == rules.Severity.WARNING
        assert rules.get_rule("MTC104").severity == rules.Severity.WARNING


class TestEngineWiring:
    def test_lint_program_runs_feasible_family(self):
        report = lint_program(_litmus("MP"), model=get_model("tso"),
                              register_width=64)
        assert report.count("MTC100") == 1
        assert report.feasible_outcomes == 3
        assert report.feasible_exhaustive is True

    def test_family_opt_out(self):
        lc = LintConfig().with_families("program", "signature")
        report = lint_program(_litmus("MP"), model=get_model("tso"),
                              register_width=64, lint_config=lc)
        assert report.count("MTC100") == 0
        assert report.feasible_outcomes is None
        assert report.feasible_exhaustive is False

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            LintConfig().with_families("feasible", "nonsense")

    def test_report_json_carries_feasible_fields(self):
        report = lint_program(_litmus("MP"), model=get_model("tso"),
                              register_width=64)
        doc = report.to_json()
        assert doc["feasible_outcomes"] == 3
        assert doc["feasible_exhaustive"] is True

    def test_feasible_budget_knob_forwarded(self):
        lc = LintConfig(feasible_budget=2)
        report = lint_program(_litmus("IRIW"), model=get_model("tso"),
                              register_width=64, lint_config=lc)
        assert report.count("MTC103") == 1
        assert report.feasible_exhaustive is False
