"""Unit tests for the mini-ISA operation types."""

import pytest

from repro.isa import INIT_VALUE, OpKind, barrier, load, store


class TestOperationConstructors:
    def test_load_fields(self):
        op = load(1, 3, 0x20)
        assert op.kind is OpKind.LOAD
        assert (op.thread, op.index, op.addr) == (1, 3, 0x20)
        assert op.value is None
        assert op.is_load and not op.is_store and not op.is_barrier

    def test_store_fields(self):
        op = store(0, 0, 5, 42)
        assert op.kind is OpKind.STORE
        assert op.value == 42
        assert op.is_store and not op.is_load

    def test_barrier_fields(self):
        op = barrier(2, 7)
        assert op.is_barrier
        assert op.addr is None and op.value is None

    def test_store_id_cannot_collide_with_init(self):
        with pytest.raises(ValueError):
            store(0, 0, 0, INIT_VALUE)


class TestDescribe:
    def test_store_describe(self):
        assert store(0, 0, 3, 7).describe() == "st [0x3] #7"

    def test_load_describe(self):
        assert load(0, 0, 0x1f).describe() == "ld [0x1f]"

    def test_barrier_describe(self):
        assert barrier(0, 0).describe() == "barrier"

    def test_repr_contains_position(self):
        assert "t1.2" in repr(load(1, 2, 0))


class TestEquality:
    def test_uid_not_part_of_equality(self):
        from repro.isa.instructions import Operation

        a = Operation(OpKind.LOAD, 0, 0, addr=1, uid=5)
        b = Operation(OpKind.LOAD, 0, 0, addr=1, uid=9)
        assert a == b

    def test_kind_matters(self):
        assert load(0, 0, 1) != barrier(0, 0)

    def test_opkind_str(self):
        assert str(OpKind.LOAD) == "ld"
        assert str(OpKind.STORE) == "st"
