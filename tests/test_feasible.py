"""Unit tests for the static feasibility enumerator (repro.feasible)."""

import itertools

import pytest

from repro.feasible import (
    DEFAULT_BUDGET,
    FeasibilityOracle,
    FeasibleSet,
    enumerate_feasible,
    signature_feasible,
)
from repro.instrument import SignatureCodec
from repro.isa import TestProgram, load, store
from repro.mcm import get_model
from repro.testgen.litmus import all_litmus_tests


def _litmus(name):
    for lt in all_litmus_tests():
        if lt.name == name:
            return lt.program
    raise KeyError(name)


def _enumerate(name, model="tso", **kw):
    program = _litmus(name)
    codec = SignatureCodec(program, 64)
    return enumerate_feasible(program, get_model(model), codec=codec, **kw), codec


class TestLitmusGroundTruth:
    """Feasible counts under TSO match the MCM's published verdicts."""

    # (litmus, feasible, cardinality): SB's both-read-zero outcome is
    # TSO-allowed (store buffering) so all 4 survive; the fenced variant
    # forbids exactly it; MP/LB/CoRR each forbid one outcome; IRIW's
    # non-causal outcome is forbidden (TSO is multi-copy atomic)
    EXPECTED = [
        ("SB", 4, 4),
        ("SB+fences", 3, 4),
        ("MP", 3, 4),
        ("MP+dmbs", 3, 4),
        ("LB", 3, 4),
        ("IRIW", 15, 16),
        ("CoRR", 3, 4),
        ("2+2W", 4, 4),
    ]

    @pytest.mark.parametrize("name,feasible,cardinality", EXPECTED)
    def test_tso_counts(self, name, feasible, cardinality):
        fset, _ = _enumerate(name)
        assert fset.exhaustive
        assert fset.cardinality == cardinality
        assert fset.feasible_count == feasible

    def test_model_monotonicity(self):
        """Stronger models only shrink the set: sc ⊆ tso ⊆ weak."""
        for name, _, _ in self.EXPECTED:
            sc, _ = _enumerate(name, "sc")
            tso, _ = _enumerate(name, "tso")
            weak, _ = _enumerate(name, "weak")
            assert sc.signatures <= tso.signatures <= weak.signatures

    def test_sc_forbids_store_buffering(self):
        sc, _ = _enumerate("SB", "sc")
        tso, _ = _enumerate("SB", "tso")
        # the one extra TSO outcome is exactly the store-buffering one
        assert sc.feasible_count == 3
        assert tso.feasible_count == 4


class TestEnumerationInvariants:
    def test_exhaustive_count_identity(self):
        """feasible == cardinality - pruned whenever exhaustive."""
        for name, _, _ in TestLitmusGroundTruth.EXPECTED:
            fset, _ = _enumerate(name)
            assert fset.feasible_count == \
                fset.cardinality - fset.assignments_pruned
            assert fset.infeasible_count == fset.assignments_pruned

    def test_membership_matches_enumeration(self):
        """Exact per-signature membership agrees with the full walk."""
        program = _litmus("MP")
        codec = SignatureCodec(program, 64)
        model = get_model("tso")
        fset = enumerate_feasible(program, model, codec=codec)
        uids = sorted(codec.candidates)
        for combo in itertools.product(*(codec.candidates[u] for u in uids)):
            sig = codec.encode(dict(zip(uids, combo)))
            assert signature_feasible(codec, model, sig) == (sig in fset)

    def test_oracle_reuse_across_membership_calls(self):
        program = _litmus("SB")
        codec = SignatureCodec(program, 64)
        model = get_model("sc")
        oracle = FeasibilityOracle(program, model)
        fset = enumerate_feasible(program, model, codec=codec)
        for sig in fset.sorted_signatures():
            assert signature_feasible(codec, model, sig, oracle=oracle)

    def test_sampled_is_subset_of_exhaustive(self):
        program = _litmus("IRIW")
        codec = SignatureCodec(program, 64)
        model = get_model("tso")
        full = enumerate_feasible(program, model, codec=codec)
        sampled = enumerate_feasible(program, model, codec=codec,
                                     budget=1, samples=10, seed=3)
        assert not sampled.exhaustive
        assert sampled.sampled == 10
        assert sampled.signatures <= full.signatures
        assert sampled.infeasible_count is None

    def test_sampling_is_seed_deterministic(self):
        program = _litmus("IRIW")
        codec = SignatureCodec(program, 64)
        model = get_model("tso")
        a = enumerate_feasible(program, model, codec=codec, budget=1,
                               samples=8, seed=11)
        b = enumerate_feasible(program, model, codec=codec, budget=1,
                               samples=8, seed=11)
        assert a.signatures == b.signatures


class TestEdgeCases:
    def test_store_only_program_has_one_empty_outcome(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1)], [store(1, 0, 0, 2)]],
            num_addresses=1, name="stores")
        codec = SignatureCodec(program, 32)
        fset = enumerate_feasible(program, get_model("sc"), codec=codec)
        assert fset.cardinality == 1
        assert fset.feasible_count == 1

    def test_single_load_reads_init_or_remote_store(self):
        program = TestProgram.from_ops(
            [[load(0, 0, 0)], [store(1, 0, 0, 7)]],
            num_addresses=1, name="one-load")
        codec = SignatureCodec(program, 32)
        fset = enumerate_feasible(program, get_model("sc"), codec=codec)
        assert fset.cardinality == 2
        assert fset.feasible_count == 2

    def test_local_forwarding_excludes_init(self):
        # ld x after a local st x can only read stores, never INIT
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)], [store(1, 0, 0, 2)]],
            num_addresses=1, name="forwarded")
        codec = SignatureCodec(program, 32)
        fset = enumerate_feasible(program, get_model("sc"), codec=codec)
        assert fset.cardinality == 2  # local st or remote st, no INIT
        assert fset.feasible_count == 2


class TestFeasibleSetType:
    def test_to_json_exhaustive_keys(self):
        fset, _ = _enumerate("MP")
        doc = fset.to_json()
        assert doc["exhaustive"] is True
        assert doc["cardinality"] == 4
        assert doc["feasible"] == 3
        assert doc["cardinality_bits"] == 3
        assert doc["pruning_factor"] == pytest.approx(4 / 3, abs=1e-3)

    def test_to_json_sampled_hides_exact_cardinality(self):
        fset, _ = _enumerate("MP", budget=1, samples=4)
        doc = fset.to_json()
        assert doc["exhaustive"] is False
        assert "cardinality" not in doc
        assert "pruning_factor" not in doc
        assert doc["sampled"] == 4

    def test_contains_and_sorted(self):
        fset, codec = _enumerate("MP")
        sigs = fset.sorted_signatures()
        assert sigs == sorted(fset.signatures)
        assert all(s in fset for s in sigs)

    def test_frozen(self):
        fset, _ = _enumerate("SB")
        with pytest.raises(AttributeError):
            fset.cardinality = 0

    def test_default_budget_exported(self):
        assert DEFAULT_BUDGET == 4096
        fset, _ = _enumerate("SB")
        assert fset.budget == DEFAULT_BUDGET


class TestMetrics:
    def test_enumeration_metrics_recorded(self):
        from repro import obs as repro_obs

        handle = repro_obs.enable()
        try:
            _enumerate("MP")
            snap = handle.metrics.snapshot()
        finally:
            repro_obs.disable()
        assert snap["feasible.enumerations"]["value"] == 1
        assert snap["feasible.outcomes"]["value"] == 3
        assert snap["feasible.prefixes_explored"]["value"] == 6
