"""Shared fixtures for the test suite."""

import pytest

from repro.instrument import SignatureCodec
from repro.isa import TestProgram, load, store
from repro.testgen import TestConfig, generate


@pytest.fixture
def figure3_program() -> TestProgram:
    """The example test of the paper's Figure 3.

    thread 0: st 0x100 (1), ld 0x100 (2), ld 0x104 (3), st 0x100 (4)
    thread 1: st 0x104 (5), st 0x100 (6), ld 0x100 (7), st 0x104 (8)
    thread 2: st 0x100 (9), st 0x104 (10)

    Addresses: 0x100 -> 0, 0x104 -> 1.  Store IDs match the paper's
    circled operation numbers.
    """
    return TestProgram.from_ops(
        [
            [store(0, 0, 0, 1), load(0, 1, 0), load(0, 2, 1), store(0, 3, 0, 4)],
            [store(1, 0, 1, 5), store(1, 1, 0, 6), load(1, 2, 0), store(1, 3, 1, 8)],
            [store(2, 0, 0, 9), store(2, 1, 1, 10)],
        ],
        num_addresses=2, name="figure3",
    )


@pytest.fixture
def small_config() -> TestConfig:
    return TestConfig(isa="arm", threads=2, ops_per_thread=20, addresses=8, seed=7)


@pytest.fixture
def small_program(small_config) -> TestProgram:
    return generate(small_config)


@pytest.fixture
def small_codec(small_program) -> SignatureCodec:
    return SignatureCodec(small_program, register_width=32)
