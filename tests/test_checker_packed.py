"""The packed checking core: plan compilation and array-kernel replay.

The packed pipeline's contract is *byte-identical verdicts* three ways:
for any campaign, :class:`PackedChecker` over a :class:`PackedPlan`
must produce the same summary — verdict methods, violation indices,
witness cycles, ``sorted_vertices`` accounting — and the same delta
work counts (``digits_changed``, ``edges_added``, ``edges_removed``)
as both ``CollectiveChecker.check_deltas`` and the legacy
``CollectiveChecker.check``.  These tests enforce that contract on
real, violating and hand-rolled campaigns, on both array backends,
plus the plan-compilation invariants (CSR universe, batched decode,
similarity ordering) and the runner/serve wiring.

The campaign/report helpers live in :mod:`tests.differential` so the
delta, packed and poly suites all exercise the same fixture.
"""

import pytest

from repro import obs
from repro.checker import CollectiveChecker, PackedChecker, PackedPlan
from repro.checker.packed import default_backend
from repro.errors import CheckerError, SignatureError
from repro.graph import GraphBuilder
from repro.harness import Campaign, check_campaign_result
from repro.instrument import Signature
from repro.mcm import get_model
from repro.sim import OperationalExecutor, platform_for_isa
from repro.testgen import TestConfig, generate
from tests.differential import (
    BACKENDS,
    HAVE_NUMPY,
    packed_report,
    reference_reports,
    run_unique_signatures,
)


class TestPlanConstruction:
    def test_rejects_observed_builder(self, small_program, small_codec):
        builder = GraphBuilder(small_program, get_model("weak"),
                               ws_mode="observed")
        with pytest.raises(CheckerError):
            PackedPlan(small_codec, builder, [])

    def test_rejects_mismatched_program(self, small_codec):
        other = generate(TestConfig(isa="arm", threads=2, ops_per_thread=6,
                                    addresses=4, seed=99))
        builder = GraphBuilder(other, get_model("weak"), ws_mode="static")
        with pytest.raises(CheckerError):
            PackedPlan(small_codec, builder, [])

    def test_rejects_unknown_backend(self, small_program, small_codec):
        builder = GraphBuilder(small_program, get_model("weak"),
                               ws_mode="static")
        with pytest.raises(CheckerError):
            PackedPlan(small_codec, builder, [], backend="cupy")

    def test_default_backend_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED_BACKEND", "array")
        assert default_backend() == "array"
        monkeypatch.delenv("REPRO_PACKED_BACKEND")
        assert default_backend() in ("numpy", "array")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupt_signature_rejected(self, backend):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=10,
                         addresses=4, seed=4)
        program, codec, signatures = run_unique_signatures(cfg, 40)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        sig = signatures[0]
        # push one word past its mixed-radix range
        bad_words = tuple(
            tuple(w + 10 ** 9 for w in tw) if t == 0 else tw
            for t, tw in enumerate(sig.words))
        with pytest.raises(SignatureError):
            PackedPlan(codec, builder, signatures + [Signature(bad_words)],
                       backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mismatched_shape_rejected(self, backend, small_program,
                                       small_codec):
        builder = GraphBuilder(small_program, get_model("weak"),
                               ws_mode="static")
        with pytest.raises(SignatureError):
            PackedPlan(small_codec, builder, [Signature(((1,),))],
                       backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_block(self, backend, small_program, small_codec):
        builder = GraphBuilder(small_program, get_model("weak"),
                               ws_mode="static")
        plan = PackedPlan(small_codec, builder, [], backend=backend)
        assert len(plan) == 0
        assert plan.similarity["signatures"] == 0
        report = PackedChecker().check(plan)
        assert report.num_graphs == 0
        assert report.summary() == CollectiveChecker().check([]).summary()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both backends")
    def test_backends_compile_identical_plans(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=6)
        program, codec, signatures = run_unique_signatures(cfg, 120)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        plans = [PackedPlan(codec, builder, signatures, backend=b)
                 for b in BACKENDS]
        a, b = plans
        assert a._digit_rows == b._digit_rows
        assert list(a.rem_flat) == list(b.rem_flat)
        assert list(a.add_flat) == list(b.add_flat)
        assert a.bucket_order == b.bucket_order
        assert a.similarity == b.similarity

    def test_full_graph_matches_legacy_build(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=15,
                         addresses=6, seed=7)
        program, codec, signatures = run_unique_signatures(cfg, 60)
        model = platform_for_isa("x86").memory_model
        builder = GraphBuilder(program, model, ws_mode="static")
        plan = PackedPlan(codec, builder, signatures)
        for index in range(len(signatures)):
            assert plan.full_graph(index).adjacency == \
                builder.build(codec.decode(signatures[index])).adjacency


class TestSimilarityOrdering:
    def test_bucket_order_is_permutation(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=6)
        program, codec, signatures = run_unique_signatures(cfg, 150)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        plan = PackedPlan(codec, builder, signatures)
        assert sorted(plan.bucket_order) == list(range(len(signatures)))

    def test_bucket_order_reduces_transitions(self):
        # the greedy chain may only tie the sorted order on degenerate
        # blocks; on a real campaign it must not be worse
        cfg = TestConfig(isa="arm", threads=3, ops_per_thread=30,
                         addresses=8, seed=11)
        program, codec, signatures = run_unique_signatures(cfg, 300)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        plan = PackedPlan(codec, builder, signatures)
        similarity = plan.similarity
        assert similarity["signatures"] == len(signatures)
        assert similarity["bucket_digits_changed"] <= \
            similarity["sorted_digits_changed"]

    def test_single_signature_block(self, small_program, small_codec):
        builder = GraphBuilder(small_program, get_model("weak"),
                               ws_mode="static")
        program = small_program
        platform = platform_for_isa("arm")
        executor = OperationalExecutor(program, get_model("weak"), platform,
                                       seed=1)
        sig = small_codec.encode(next(iter(executor.run(1))).rf)
        plan = PackedPlan(small_codec, builder, [sig])
        assert plan.bucket_order == [0]
        assert plan.similarity["bucket_digits_changed"] == 0
        report = PackedChecker().check(plan)
        assert report.num_graphs == 1
        assert not report.violations


class TestThreeWayParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("isa", ["arm", "x86"])
    def test_real_campaign_parity(self, isa, backend):
        cfg = TestConfig(isa=isa, threads=2, ops_per_thread=40,
                         addresses=16, seed=3)
        program, codec, signatures = run_unique_signatures(cfg, 400)
        model = platform_for_isa(isa).memory_model
        legacy, delta = reference_reports(program, codec, signatures, model)
        packed, plan = packed_report(program, codec, signatures, model,
                                     backend)
        assert packed.summary() == delta.summary() == legacy.summary()
        assert (packed.digits_changed, packed.edges_added,
                packed.edges_removed) == \
               (delta.digits_changed, delta.edges_added, delta.edges_removed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_violating_campaign_parity(self, backend):
        """ARM weak executions checked against SC: genuine violations
        must flow through the packed windowed path with witness cycles
        identical to both reference checkers'."""
        cfg = TestConfig(isa="arm", threads=4, ops_per_thread=40,
                         addresses=8, seed=3)
        program, codec, signatures = run_unique_signatures(cfg, 300, seed=13)
        legacy, delta = reference_reports(program, codec, signatures,
                                          get_model("sc"))
        packed, plan = packed_report(program, codec, signatures,
                                     get_model("sc"), backend)
        assert len(legacy.violations) > 0
        assert packed.summary() == delta.summary() == legacy.summary()
        for mine, theirs in zip(packed.verdicts, legacy.verdicts):
            assert (mine.violation, mine.cycle) == \
                (theirs.violation, theirs.cycle)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_initial_key_parity(self, backend):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=25,
                         addresses=8, seed=5)
        program, codec, signatures = run_unique_signatures(cfg, 150)
        key = lambda v: -v
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        graphs = [builder.build(codec.decode(sig)) for sig in signatures]
        legacy = CollectiveChecker(initial_key=key).check(graphs)
        packed, plan = packed_report(program, codec, signatures,
                                     get_model("weak"), backend,
                                     initial_key=key)
        assert packed.summary() == legacy.summary()

    def test_precompiled_base_order_used_without_key(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=6)
        program, codec, signatures = run_unique_signatures(cfg, 100)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        plan = PackedPlan(codec, builder, signatures)
        assert plan.base_order is not None
        assert sorted(plan.base_order) == list(range(plan.num_vertices))
        assert all(plan.base_position[v] == p
                   for p, v in enumerate(plan.base_order))
        # the checker still counts the complete sort it skipped
        report = PackedChecker().check(plan)
        assert report.sorted_vertices >= plan.num_vertices


class TestRunnerWiring:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        campaign = Campaign(config=TestConfig(
            isa="arm", threads=2, ops_per_thread=30, addresses=8, seed=9),
            seed=5)
        return campaign, campaign.run(250)

    def test_packed_outcome_matches_delta(self, campaign_result):
        campaign, result = campaign_result
        packed = check_campaign_result(result, campaign.model,
                                       pipeline="packed")
        delta = check_campaign_result(result, campaign.model,
                                      pipeline="delta")
        assert packed.pipeline == "packed"
        assert packed.collective.summary() == delta.collective.summary()
        assert packed.baseline.summary() == delta.baseline.summary()

    def test_packed_outcome_materializes_no_graphs(self, campaign_result):
        campaign, result = campaign_result
        outcome = check_campaign_result(result, campaign.model,
                                        pipeline="packed")
        assert outcome.graphs == []
        assert isinstance(outcome.source, PackedPlan)

    def test_graph_at_rebuilds_identical_graphs(self, campaign_result):
        campaign, result = campaign_result
        packed = check_campaign_result(result, campaign.model,
                                       pipeline="packed")
        legacy = check_campaign_result(result, campaign.model,
                                       pipeline="graphs")
        for index in range(len(packed.signatures)):
            assert packed.graph_at(index).adjacency == \
                legacy.graphs[index].adjacency

    def test_observed_ws_falls_back_to_graphs(self, campaign_result):
        campaign, result = campaign_result
        outcome = check_campaign_result(result, campaign.model,
                                        ws_mode="observed",
                                        pipeline="packed")
        assert outcome.pipeline == "graphs"
        assert outcome.graphs

    def test_packed_obs_counters_recorded(self, campaign_result):
        campaign, result = campaign_result
        with obs.enabled_obs() as handle:
            outcome = check_campaign_result(result, campaign.model,
                                            pipeline="packed")
        metrics = handle.metrics
        report = outcome.collective
        assert metrics.counter("checker.packed.graphs").value == \
            report.num_graphs
        assert metrics.counter("checker.packed.digits_changed").value == \
            report.digits_changed
        assert metrics.gauge("checker.packed.edge_universe").value == \
            outcome.source.num_edges
        assert metrics.gauge("checker.packed.bucket_digits_changed").value \
            == outcome.source.similarity["bucket_digits_changed"]


class TestStreamFinalizeWiring:
    def test_finalize_packed_matches_delta(self):
        from repro.checker.stream import StreamingCollectiveChecker

        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=20,
                         addresses=8, seed=6)
        program, codec, signatures = run_unique_signatures(cfg, 150)
        builder = GraphBuilder(program, get_model("weak"), ws_mode="static")
        checker = StreamingCollectiveChecker(codec, builder)
        for sig in signatures:
            checker.feed(sig)
        assert checker.finalize(pipeline="packed").summary() == \
            checker.finalize().summary()
