"""Unit tests for the constrained-random generator."""

from repro.testgen import TestConfig, generate, generate_suite


class TestGenerate:
    def test_shape_matches_config(self):
        cfg = TestConfig(threads=3, ops_per_thread=25, addresses=16, seed=1)
        p = generate(cfg)
        assert p.num_threads == 3
        assert all(len(tp) == 25 for tp in p.threads)
        assert p.num_addresses == 16
        assert p.name == cfg.name

    def test_reproducible_for_same_seed(self):
        cfg = TestConfig(seed=42)
        a, b = generate(cfg), generate(cfg)
        assert [op.describe() for op in a.all_ops] == \
               [op.describe() for op in b.all_ops]

    def test_different_seeds_differ(self):
        cfg = TestConfig(threads=2, ops_per_thread=40, addresses=8)
        a = generate(cfg.with_seed(1))
        b = generate(cfg.with_seed(2))
        assert [op.describe() for op in a.all_ops] != \
               [op.describe() for op in b.all_ops]

    def test_store_ids_unique_and_dense(self):
        p = generate(TestConfig(threads=4, ops_per_thread=50, seed=3))
        values = [op.value for op in p.stores]
        assert len(values) == len(set(values))
        assert min(values) == 1
        assert max(values) == len(values)

    def test_load_fraction_roughly_half(self):
        p = generate(TestConfig(threads=4, ops_per_thread=200, seed=5))
        loads = len(p.loads)
        total = loads + len(p.stores)
        assert 0.4 < loads / total < 0.6

    def test_load_fraction_extremes(self):
        all_loads = generate(TestConfig(load_fraction=1.0, seed=1))
        assert not all_loads.stores
        all_stores = generate(TestConfig(load_fraction=0.0, seed=1))
        assert not all_stores.loads

    def test_addresses_cover_pool(self):
        p = generate(TestConfig(threads=4, ops_per_thread=200, addresses=8, seed=9))
        used = {op.addr for op in p.all_ops}
        assert used == set(range(8))

    def test_barrier_fraction_inserts_barriers(self):
        p = generate(TestConfig(ops_per_thread=100, barrier_fraction=0.3, seed=4))
        barriers = sum(1 for op in p.all_ops if op.is_barrier)
        assert barriers > 0
        # memory ops count unchanged
        assert sum(1 for op in p.all_ops if not op.is_barrier) == 200


class TestGenerateSuite:
    def test_suite_size(self):
        suite = generate_suite(TestConfig(seed=1), 10)
        assert len(suite) == 10

    def test_suite_tests_are_distinct(self):
        suite = generate_suite(TestConfig(seed=1), 5)
        listings = {tuple(op.describe() for op in p.all_ops) for p in suite}
        assert len(listings) == 5

    def test_suite_reproducible(self):
        a = generate_suite(TestConfig(seed=2), 3)
        b = generate_suite(TestConfig(seed=2), 3)
        for pa, pb in zip(a, b):
            assert [o.describe() for o in pa.all_ops] == \
                   [o.describe() for o in pb.all_ops]
