"""Signature-space analysis: weight-table recomputation (MTC01x)."""

import dataclasses

from repro.instrument import SignatureCodec
from repro.isa import TestProgram, load, store
from repro.lint.signature_lints import (
    is_zero_entropy,
    lint_weight_tables,
    static_cardinality,
)


def _corrupt_slot(codec, table_index=0, slot_index=0, **changes):
    table = codec.tables[table_index]
    table.slots[slot_index] = dataclasses.replace(
        table.slots[slot_index], **changes)


class TestCardinality:
    def test_matches_codec_product(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        assert static_cardinality(codec) == codec.cardinality

    def test_zero_entropy_single_thread(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)]], num_addresses=1)
        codec = SignatureCodec(program, 32)
        assert static_cardinality(codec) == 1
        assert is_zero_entropy(codec)

    def test_figure3_is_not_zero_entropy(self, figure3_program):
        assert not is_zero_entropy(SignatureCodec(figure3_program, 32))


class TestWeightTableRecomputation:
    def test_healthy_tables_pass(self, figure3_program, small_codec,
                                 small_program):
        codec = SignatureCodec(figure3_program, 32)
        findings = lint_weight_tables(figure3_program, codec)
        assert not [f for f in findings if f.severity >= 30]
        findings = lint_weight_tables(small_program, small_codec)
        assert not [f for f in findings if f.severity >= 30]

    def test_corrupted_multiplier_is_mtc011(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        original = codec.tables[1].slots[0].multiplier
        _corrupt_slot(codec, 1, 0, multiplier=original * 3 + 1)
        findings = lint_weight_tables(figure3_program, codec)
        assert [f for f in findings if f.rule == "MTC011"]

    def test_corrupted_word_is_mtc011(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        _corrupt_slot(codec, 0, 0, word=5)
        findings = lint_weight_tables(figure3_program, codec)
        assert [f for f in findings if f.rule == "MTC011"]

    def test_reordered_candidates_are_mtc011(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        slot = codec.tables[0].slots[0]
        _corrupt_slot(codec, 0, 0,
                      candidates=tuple(reversed(slot.candidates)))
        findings = lint_weight_tables(figure3_program, codec)
        assert [f for f in findings if f.rule == "MTC011"]

    def test_dropped_slot_is_mtc011(self, figure3_program):
        codec = SignatureCodec(figure3_program, 32)
        del codec.tables[0].slots[0]
        findings = lint_weight_tables(figure3_program, codec)
        assert [f for f in findings if f.rule == "MTC011"]

    def test_word_spill_is_flagged_info(self):
        # 4 candidates per load, 2-bit register: every load spills
        program = TestProgram.from_ops(
            [[load(0, 0, 0), load(0, 1, 0)],
             [store(1, 0, 0, 1), store(1, 1, 0, 2), store(1, 2, 0, 3)]],
            num_addresses=1)
        codec = SignatureCodec(program, 2)
        findings = lint_weight_tables(program, codec)
        assert [f for f in findings if f.rule == "MTC012"]
        assert not [f for f in findings if f.rule == "MTC011"]

    def test_single_candidate_load_is_mtc013(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)]], num_addresses=1)
        codec = SignatureCodec(program, 32)
        findings = lint_weight_tables(program, codec)
        assert [f for f in findings if f.rule == "MTC013"]

    def test_zero_entropy_is_mtc010(self):
        program = TestProgram.from_ops(
            [[store(0, 0, 0, 1), load(0, 1, 0)]], num_addresses=1)
        codec = SignatureCodec(program, 32)
        findings = lint_weight_tables(program, codec)
        assert [f for f in findings if f.rule == "MTC010"]
