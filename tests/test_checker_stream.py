"""Tests for arrival-order streaming checking (repro.checker.stream)."""

import random

import pytest

from repro.checker import CollectiveChecker
from repro.checker.delta import SignatureDeltaSource
from repro.checker.stream import StreamingCollectiveChecker
from repro.errors import CheckerError
from repro.graph import GraphBuilder
from repro.harness import Campaign
from repro.instrument import SignatureCodec
from repro.mcm import SC, WEAK
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate


@pytest.fixture
def campaign_signatures():
    config = TestConfig(isa="arm", threads=2, ops_per_thread=18,
                        addresses=8, seed=11)
    campaign = Campaign(config=config, seed=2)
    result = campaign.run(250)
    codec = result.codec
    builder = GraphBuilder(result.program, WEAK, ws_mode="static")
    return codec, builder, result.sorted_signatures()


def _batch_report(codec, builder, signatures):
    source = SignatureDeltaSource(codec, builder, sorted(set(signatures)))
    return CollectiveChecker().check_deltas(source)


class TestConstruction:
    def test_rejects_observed_ws_builder(self, campaign_signatures):
        codec, builder, _ = campaign_signatures
        observed = GraphBuilder(builder.program, WEAK, ws_mode="observed")
        with pytest.raises(CheckerError):
            StreamingCollectiveChecker(codec, observed)

    def test_rejects_mismatched_program(self, campaign_signatures,
                                        figure3_program):
        codec, _, _ = campaign_signatures
        other = GraphBuilder(figure3_program, WEAK, ws_mode="static")
        with pytest.raises(CheckerError):
            StreamingCollectiveChecker(codec, other)


class TestFeed:
    def test_sorted_feed_matches_batch_verdicts(self, campaign_signatures):
        codec, builder, signatures = campaign_signatures
        checker = StreamingCollectiveChecker(codec, builder)
        for signature in signatures:
            checker.feed(signature)
        batch = _batch_report(codec, builder, signatures)
        fed = checker.report
        assert [v.violation for v in fed.verdicts] == \
            [v.violation for v in batch.verdicts]
        assert len(checker) == len(signatures)

    def test_shuffled_feed_finds_the_same_violation_set(
            self, campaign_signatures):
        codec, builder, signatures = campaign_signatures
        batch = _batch_report(codec, builder, signatures)
        expected = {signatures[v.index] for v in batch.violations}
        for seed in (0, 1, 2):
            shuffled = list(signatures)
            random.Random(seed).shuffle(shuffled)
            checker = StreamingCollectiveChecker(codec, builder)
            for signature in shuffled:
                checker.feed(signature)
            assert set(checker.violating_signatures()) == expected

    def test_violations_detected_streaming(self):
        """A weak-hardware campaign checked under SC must violate, and
        the streaming verdicts must flag the same signatures as batch."""
        config = TestConfig(isa="arm", threads=2, ops_per_thread=12,
                            addresses=4, seed=5)
        program = generate(config)
        codec = SignatureCodec(program, config.register_width)
        executor = OperationalExecutor(program, WEAK, seed=9)
        signatures = {codec.encode(e.rf) for e in executor.run(300)}
        builder = GraphBuilder(program, SC, ws_mode="static")
        batch = _batch_report(codec, builder, signatures)
        assert batch.violations, "seed produced no SC violations"
        checker = StreamingCollectiveChecker(codec, builder)
        for signature in sorted(signatures, reverse=True):
            checker.feed(signature)
        assert set(checker.violating_signatures()) == \
            {sorted(set(signatures))[v.index] for v in batch.violations}


class TestFinalize:
    def test_finalize_is_byte_identical_to_batch(self, campaign_signatures):
        codec, builder, signatures = campaign_signatures
        batch = _batch_report(codec, builder, signatures)
        shuffled = list(signatures)
        random.Random(42).shuffle(shuffled)
        checker = StreamingCollectiveChecker(codec, builder)
        for signature in shuffled:
            checker.feed(signature)
        assert checker.finalize().summary() == batch.summary()

    def test_finalize_accepts_a_wider_pool(self, campaign_signatures):
        """Serve sessions replay their full multiset, including dedup
        hits never fed here — finalize must cover the superset."""
        codec, builder, signatures = campaign_signatures
        checker = StreamingCollectiveChecker(codec, builder)
        for signature in signatures[: len(signatures) // 2]:
            checker.feed(signature)
        report = checker.finalize(signatures)
        assert report.summary() == \
            _batch_report(codec, builder, signatures).summary()
