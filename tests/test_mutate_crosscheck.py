"""The cross-oracle detection channels of the sensitivity campaigns.

``cross_check="feasible"`` consults the static membership oracle,
``cross_check="poly"`` the frontier-closure family; both fire before
the graph checker and both must flag the signature-corrupting gem5
bugs without false-firing on clean campaigns.
"""

import pytest

from repro.mutate.campaign import (
    CRASH,
    FEASIBLE,
    POLY,
    SensitivityCampaign,
    normalize_cross_check,
    run_sensitivity_suite,
)


class TestNormalization:
    def test_selectors(self):
        assert normalize_cross_check(None) is None
        assert normalize_cross_check(False) is None
        assert normalize_cross_check(True) == FEASIBLE
        assert normalize_cross_check("feasible") == FEASIBLE
        assert normalize_cross_check("poly") == POLY

    def test_typo_is_a_hard_error(self):
        with pytest.raises(ValueError):
            normalize_cross_check("polynomial")


class TestChannelPlumbing:
    def test_default_keeps_channel_inactive(self):
        out = SensitivityCampaign("tso-sb-reorder", seeds=1,
                                  control=False).run()
        assert out.cross_check is None
        assert all(s.out_of_feasible == 0 for s in out.seeds)
        assert FEASIBLE not in out.channels
        assert out.to_json()["cross_check"] is None

    def test_seed_outcome_json_carries_out_of_feasible(self):
        out = SensitivityCampaign("tso-sb-reorder", seeds=1,
                                  control=False).run()
        doc = out.seeds[0].to_json()
        assert "out_of_feasible" in doc

    def test_operational_mutation_with_cross_check(self):
        """Cross-checking a clean-signature channel never false-fires:
        any feasible-channel detection must come with real misses."""
        out = SensitivityCampaign("tso-sb-reorder", seeds=1, control=False,
                                  cross_check=True).run()
        # the historical boolean resolves to the feasible oracle
        assert out.cross_check == FEASIBLE
        assert out.detected
        for s in out.seeds:
            if s.channel == FEASIBLE:
                assert s.out_of_feasible > 0
            else:
                assert s.out_of_feasible == 0


class TestGem5Bugs:
    """ISSUE acceptance: each gem5 bug produces out-of-feasible-set
    signatures via the mutate sensitivity path (bug 3 crashes before
    shipping any signature, so its channel stays ``crash``)."""

    def test_protocol_squash_detected_by_membership(self):
        out = SensitivityCampaign("gem5-protocol-squash", seeds=1,
                                  control=False, cross_check=True).run()
        assert out.detected
        assert out.channels == [FEASIBLE]
        assert out.seeds[0].out_of_feasible >= 1

    def test_lsq_squash_detected_by_membership(self):
        out = SensitivityCampaign("gem5-lsq-squash", seeds=1,
                                  control=False, cross_check=True).run()
        assert out.detected
        assert FEASIBLE in out.channels
        assert out.seeds[0].out_of_feasible >= 1

    def test_writeback_race_still_detected_by_crash(self):
        out = SensitivityCampaign("gem5-writeback-race", seeds=1,
                                  control=False, cross_check=True).run()
        assert out.detected
        assert out.channels == [CRASH]
        assert all(s.out_of_feasible == 0 for s in out.seeds)


class TestPolyChannel:
    """The dynamic cross-oracle: same contract as the feasible channel,
    decided by the independent frontier-closure family instead of set
    membership (exact at any size, never enumerative)."""

    def test_operational_mutation_with_poly_cross_check(self):
        out = SensitivityCampaign("tso-sb-reorder", seeds=1, control=False,
                                  cross_check="poly").run()
        assert out.cross_check == POLY
        assert out.detected
        for s in out.seeds:
            if s.channel == POLY:
                assert s.poly_flags > 0
            else:
                assert s.poly_flags == 0

    def test_protocol_squash_detected_by_closure(self):
        out = SensitivityCampaign("gem5-protocol-squash", seeds=1,
                                  control=False, cross_check="poly").run()
        assert out.detected
        assert out.channels == [POLY]
        assert out.seeds[0].poly_flags >= 1

    def test_lsq_squash_detected_by_closure(self):
        out = SensitivityCampaign("gem5-lsq-squash", seeds=1,
                                  control=False, cross_check="poly").run()
        assert out.detected
        assert POLY in out.channels
        assert out.seeds[0].poly_flags >= 1

    def test_writeback_race_still_detected_by_crash(self):
        out = SensitivityCampaign("gem5-writeback-race", seeds=1,
                                  control=False, cross_check="poly").run()
        assert out.detected
        assert out.channels == [CRASH]
        assert all(s.poly_flags == 0 for s in out.seeds)


def test_suite_forwards_cross_check_flag():
    outcomes = run_sensitivity_suite(["tso-stale-read"], seeds=1,
                                     control=False, cross_check=True)
    assert len(outcomes) == 1
    assert outcomes[0].cross_check == FEASIBLE
    assert outcomes[0].detected
