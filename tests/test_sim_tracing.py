"""Unit tests for protocol tracing."""

import pytest

from repro import obs
from repro.sim.detailed import DetailedExecutor
from repro.sim.tracing import COHERENCE_TAP, ProtocolTracer
from repro.testgen import TestConfig, generate


@pytest.fixture
def traced_run():
    cfg = TestConfig(isa="x86", threads=2, ops_per_thread=10,
                     addresses=4, words_per_line=4, seed=8)
    program = generate(cfg)
    tracer = ProtocolTracer()
    executor = DetailedExecutor(program, seed=3, layout=cfg.layout)
    with tracer.attach_to(executor):
        execution = executor.run_one()
    return program, tracer, execution


class TestCapture:
    def test_messages_and_stores_captured(self, traced_run):
        _, tracer, execution = traced_run
        assert tracer.messages()
        assert len(tracer.stores()) == sum(len(c) for c in execution.ws.values())

    def test_store_values_match_ws(self, traced_run):
        program, tracer, execution = traced_run
        traced = {}
        for event in tracer.stores():
            addr, value = event.detail
            traced.setdefault(addr, []).append(program.store_with_value(value).uid)
        for addr, chain in execution.ws.items():
            if chain:
                assert traced[addr] == chain

    def test_handler_filter(self, traced_run):
        _, tracer, _ = traced_run
        requests = tracer.messages("request")
        assert requests
        assert all(e.detail[2] == "request" for e in requests)
        assert all(e.detail[3][0] in ("GETS", "GETX") for e in requests)

    def test_timestamps_nondecreasing_per_event_order(self, traced_run):
        _, tracer, _ = traced_run
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_patch_restored_after_context(self, traced_run):
        import repro.sim.coherence as coherence

        assert coherence.Mesh.send.__name__ == "send"
        assert "tracer" not in coherence.Mesh.send.__code__.co_names or True
        # a fresh run without the tracer must not grow the trace
        _, tracer, _ = traced_run
        before = len(tracer)
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=5,
                         addresses=4, seed=8)
        DetailedExecutor(generate(cfg), seed=1).run_one()
        assert len(tracer) == before


class TestReentrancy:
    def _run(self, executor):
        executor.run_one()

    def test_nested_contexts_restore_originals(self):
        import repro.sim.coherence as coherence

        original_send = coherence.Mesh.send
        original_record = coherence.CoherentSystem.record_store
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=8,
                         addresses=4, seed=8)
        executor = DetailedExecutor(generate(cfg), seed=3)
        outer, inner = ProtocolTracer(), ProtocolTracer()
        with outer.attach_to(executor):
            with inner.attach_to(executor):
                self._run(executor)
            assert COHERENCE_TAP.active      # outer still subscribed
            self._run(executor)
        assert not COHERENCE_TAP.active
        assert coherence.Mesh.send is original_send
        assert coherence.CoherentSystem.record_store is original_record

    def test_nested_tracers_both_capture(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=8,
                         addresses=4, seed=8)
        executor = DetailedExecutor(generate(cfg), seed=3)
        outer, inner = ProtocolTracer(), ProtocolTracer()
        with outer.attach_to(executor):
            self._run(executor)              # outer only
            outer_solo = len(outer)
            with inner.attach_to(executor):
                self._run(executor)          # both
        assert outer_solo > 0
        assert len(inner) > 0
        assert len(outer) > outer_solo

    def test_overlapping_non_nested_exit_order(self):
        """Out-of-order detach (a releases before b) must still restore
        the unpatched functions once both are gone."""
        import repro.sim.coherence as coherence

        original_send = coherence.Mesh.send
        a, b = ProtocolTracer(), ProtocolTracer()
        ctx_a, ctx_b = a.attach_to(None), b.attach_to(None)
        ctx_a.__enter__()
        ctx_b.__enter__()
        ctx_a.__exit__(None, None, None)
        assert COHERENCE_TAP.active
        ctx_b.__exit__(None, None, None)
        assert not COHERENCE_TAP.active
        assert coherence.Mesh.send is original_send

    def test_same_tracer_twice_is_refused(self):
        tracer = ProtocolTracer()
        with tracer.attach_to(None):
            with pytest.raises(ValueError):
                with tracer.attach_to(None):
                    pass
        assert not COHERENCE_TAP.active

    def test_events_counted_in_obs_registry(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=8,
                         addresses=4, words_per_line=4, seed=8)
        executor = DetailedExecutor(generate(cfg), seed=3)
        tracer = ProtocolTracer()
        with obs.enabled_obs() as handle:
            with tracer.attach_to(executor):
                execution = executor.run_one()
        metrics = handle.metrics
        assert metrics.counter("sim.coherence.messages").value >= len(
            tracer.messages())
        assert metrics.counter("sim.coherence.store_commits").value == sum(
            len(c) for c in execution.ws.values())


class TestFiltering:
    def test_line_filter_restricts_messages(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=15,
                         addresses=8, seed=9)   # 8 one-word lines
        program = generate(cfg)
        tracer = ProtocolTracer(lines={0})
        executor = DetailedExecutor(program, seed=2)
        with tracer.attach_to(executor):
            executor.run_one()
        for event in tracer.messages():
            handler, args = event.detail[2], event.detail[3]
            line = args[1] if handler == "request" else args[0]
            assert line == 0

    def test_capacity_ring_buffer(self):
        cfg = TestConfig(isa="x86", threads=2, ops_per_thread=20,
                         addresses=4, seed=9)
        program = generate(cfg)
        tracer = ProtocolTracer(capacity=10)
        executor = DetailedExecutor(program, seed=2)
        with tracer.attach_to(executor):
            executor.run_one()
        assert len(tracer) == 10

    def test_clear(self, traced_run):
        _, tracer, _ = traced_run
        tracer.clear()
        assert len(tracer) == 0


class TestRendering:
    def test_render_limits_lines(self, traced_run):
        _, tracer, _ = traced_run
        text = tracer.render(limit=5)
        assert len(text.splitlines()) == 5

    def test_render_contains_stores_and_messages(self, traced_run):
        _, tracer, _ = traced_run
        text = tracer.render(limit=len(tracer))
        assert "STORE" in text
        assert "core/" in text or "dir/" in text
