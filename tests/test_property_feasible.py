"""Soundness of the static feasibility oracle: dynamic ⊆ static.

Two independent directions bound the enumerator:

* every signature a simulated machine actually produces — operational
  executor across all three models, detailed MESI simulator fault-free
  — is a member of the statically enumerated feasible set (the
  enumerator never under-approximates reality);
* on small programs the enumerated set equals the brute-force set of
  rf assignments whose :class:`~repro.graph.builder.GraphBuilder`
  constraint graph is acyclic — the *checker's* own graph construction,
  built independently of the oracle's — so the two implementations of
  the same semantics agree assignment-by-assignment (the differential
  contract behind ``--cross-check feasible``).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.feasible import FeasibilityOracle, enumerate_feasible
from repro.graph.builder import GraphBuilder
from repro.graph.toposort import topological_sort
from repro.instrument import SignatureCodec
from repro.mcm import get_model
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate
from repro.testgen.litmus import all_litmus_tests

MODELS = ("sc", "tso", "weak")


@st.composite
def small_case(draw):
    cfg = TestConfig(
        isa=draw(st.sampled_from(["x86", "arm"])),
        threads=draw(st.integers(2, 3)),
        ops_per_thread=draw(st.integers(3, 10)),
        addresses=draw(st.integers(1, 4)),
        barrier_fraction=draw(st.sampled_from([0.0, 0.2])),
        seed=draw(st.integers(0, 20_000)),
    )
    return cfg, draw(st.sampled_from(MODELS)), draw(st.integers(0, 500))


@given(small_case())
@settings(max_examples=30, deadline=None)
def test_observed_executions_are_feasible(case):
    cfg, model_name, seed = case
    program = generate(cfg)
    model = get_model(model_name)
    oracle = FeasibilityOracle(program, model)
    executor = OperationalExecutor(program, model, seed=seed)
    for execution in executor.run(15):
        assert oracle.is_feasible(execution.rf), (cfg.name, model_name)


@given(small_case())
@settings(max_examples=15, deadline=None)
def test_observed_signatures_in_enumerated_set(case):
    """Same property at the signature level, through the weight tables."""
    cfg, model_name, seed = case
    program = generate(cfg)
    codec = SignatureCodec(program, cfg.register_width)
    model = get_model(model_name)
    fset = enumerate_feasible(program, model, codec=codec)
    executor = OperationalExecutor(program, model, seed=seed)
    for execution in executor.run(10):
        sig = codec.encode(execution.rf)
        if fset.exhaustive:
            assert sig in fset, (cfg.name, model_name)
        else:
            assert FeasibilityOracle(program, model).is_feasible(
                execution.rf)


def _brute_force_feasible(program, codec, model):
    """The checker's own graphs, enumerated exhaustively."""
    builder = GraphBuilder(program, model)
    vertices = list(range(len(program.all_ops)))
    uids = sorted(codec.candidates)
    feasible = set()
    for combo in itertools.product(*(codec.candidates[u] for u in uids)):
        rf = dict(zip(uids, combo))
        graph = builder.build(rf)
        if topological_sort(vertices, graph.adjacency) is not None:
            feasible.add(codec.encode(rf))
    return feasible


@given(small_case())
@settings(max_examples=15, deadline=None)
def test_differential_against_graph_builder(case):
    cfg, model_name, _ = case
    program = generate(cfg)
    codec = SignatureCodec(program, cfg.register_width)
    if codec.cardinality > 512:
        return  # keep the brute-force side cheap
    model = get_model(model_name)
    fset = enumerate_feasible(program, model, codec=codec)
    assert fset.exhaustive
    assert fset.signatures == _brute_force_feasible(program, codec, model)


def test_differential_on_litmus_corpus():
    """The same equality on every litmus shape, all three models."""
    for lt in all_litmus_tests():
        codec = SignatureCodec(lt.program, 64)
        for model_name in MODELS:
            model = get_model(model_name)
            fset = enumerate_feasible(lt.program, model, codec=codec)
            assert fset.signatures == _brute_force_feasible(
                lt.program, codec, model), (lt.name, model_name)


def test_detailed_simulator_executions_are_feasible():
    """Fault-free MESI runs under TSO stay inside the feasible set."""
    from repro.harness import Campaign
    from repro.sim.detailed import DetailedExecutor
    from repro.sim.faults import FaultConfig
    from repro.sim.platform import GEM5_X86_8CORE

    cfg = TestConfig(isa="x86", threads=2, ops_per_thread=8, addresses=2,
                     seed=9)
    faults = FaultConfig(l1_lines=4)
    campaign = Campaign(
        config=cfg, seed=0, platform=GEM5_X86_8CORE,
        executor_cls=lambda *a, **kw: DetailedExecutor(
            *a, faults=faults, **kw))
    result = campaign.run(40)
    assert result.crashes == 0 and result.signature_asserts == 0
    oracle = FeasibilityOracle(result.program, campaign.model)
    for sig in result.sorted_signatures():
        assert oracle.is_feasible(result.codec.decode(sig))
