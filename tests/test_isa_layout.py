"""Unit tests for memory layouts (false sharing)."""

import pytest

from repro.isa import MemoryLayout


class TestLayout:
    def test_no_false_sharing_gives_one_word_per_line(self):
        layout = MemoryLayout(8, 1)
        assert [layout.line_of(a) for a in range(8)] == list(range(8))
        assert layout.num_lines == 8

    def test_four_words_per_line(self):
        layout = MemoryLayout(8, 4)
        assert layout.line_of(0) == layout.line_of(3) == 0
        assert layout.line_of(4) == layout.line_of(7) == 1
        assert layout.num_lines == 2

    def test_partial_last_line(self):
        layout = MemoryLayout(10, 4)
        assert layout.num_lines == 3
        assert list(layout.words_in_line(2)) == [8, 9]

    def test_words_in_line_roundtrip(self):
        layout = MemoryLayout(32, 16)
        for line in range(layout.num_lines):
            for addr in layout.words_in_line(line):
                assert layout.line_of(addr) == line

    def test_words_per_line_bounds(self):
        with pytest.raises(ValueError):
            MemoryLayout(8, 0)
        with pytest.raises(ValueError):
            MemoryLayout(8, 17)   # more than LINE_BYTES/WORD_BYTES

    def test_max_words_per_line_allowed(self):
        assert MemoryLayout(32, 16).num_lines == 2
