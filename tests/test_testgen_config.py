"""Unit tests for test configurations (paper Table 2)."""

import pytest

from repro.testgen import PAPER_CONFIGS, TestConfig, paper_config


class TestConfigBasics:
    def test_paper_naming_convention(self):
        cfg = TestConfig(isa="arm", threads=2, ops_per_thread=50, addresses=32)
        assert cfg.name == "ARM-2-50-32"

    def test_x86_name_is_lowercase(self):
        cfg = TestConfig(isa="x86", threads=4, ops_per_thread=100, addresses=64)
        assert cfg.name == "x86-4-100-64"

    def test_register_width_by_isa(self):
        assert TestConfig(isa="x86").register_width == 64
        assert TestConfig(isa="arm").register_width == 32

    def test_memory_model_by_isa(self):
        assert TestConfig(isa="x86").memory_model_name == "tso"
        assert TestConfig(isa="arm").memory_model_name == "weak"

    def test_layout_reflects_words_per_line(self):
        cfg = TestConfig(addresses=32, words_per_line=4)
        assert cfg.layout.num_lines == 8

    def test_with_seed_and_layout(self):
        cfg = TestConfig(seed=1)
        assert cfg.with_seed(9).seed == 9
        assert cfg.with_layout(16).words_per_line == 16
        # original is untouched (frozen dataclass)
        assert cfg.seed == 1 and cfg.words_per_line == 1


class TestValidation:
    def test_bad_isa(self):
        with pytest.raises(ValueError):
            TestConfig(isa="mips")

    def test_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TestConfig(threads=0)
        with pytest.raises(ValueError):
            TestConfig(ops_per_thread=0)
        with pytest.raises(ValueError):
            TestConfig(addresses=0)

    def test_load_fraction_bounds(self):
        with pytest.raises(ValueError):
            TestConfig(load_fraction=1.5)


class TestPaperConfigs:
    def test_twenty_one_configurations(self):
        assert len(PAPER_CONFIGS) == 21

    def test_fifteen_arm_six_x86(self):
        assert sum(1 for c in PAPER_CONFIGS if c.isa == "arm") == 15
        assert sum(1 for c in PAPER_CONFIGS if c.isa == "x86") == 6

    def test_lookup_by_name(self):
        assert paper_config("ARM-7-200-128").threads == 7
        assert paper_config("x86-4-200-64").ops_per_thread == 200

    def test_lookup_is_case_insensitive(self):
        assert paper_config("arm-2-50-32") == PAPER_CONFIGS[0]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            paper_config("ARM-3-50-32")

    def test_paper_parameter_domain(self):
        for cfg in PAPER_CONFIGS:
            assert cfg.threads in (2, 4, 7)
            assert cfg.ops_per_thread in (50, 100, 200)
            assert cfg.addresses in (32, 64, 128)
