"""Unit tests for the per-load candidate analysis (Figure 3, step 1)."""

from repro.instrument import candidate_sources, observable_values
from repro.isa import INIT, INIT_VALUE


class TestFigure3Candidates:
    """The paper's Figure 3 example, including its printed candidate sets."""

    def test_load2_candidates(self, figure3_program):
        """Load (2) can read its thread's store (1), or (6), or (9)."""
        p = figure3_program
        cands = candidate_sources(p)
        ld2 = p.threads[0].ops[1].uid
        sources = [p.op(u).value for u in cands[ld2]]
        assert sources == [1, 6, 9]

    def test_load3_candidates_include_init(self, figure3_program):
        """Load (3) can read the initial value, (5), (8) or (10)."""
        p = figure3_program
        cands = candidate_sources(p)
        ld3 = p.threads[0].ops[2].uid
        assert cands[ld3][0] is INIT or cands[ld3][0] == INIT
        rest = [p.op(u).value for u in cands[ld3][1:]]
        assert rest == [5, 8, 10]

    def test_load7_candidates(self, figure3_program):
        """Load (7) reads its own (6), or (1), (4), (9)."""
        p = figure3_program
        cands = candidate_sources(p)
        ld7 = p.threads[1].ops[2].uid
        sources = [p.op(u).value for u in cands[ld7]]
        assert sources[0] == 6             # local store first
        assert set(sources[1:]) == {1, 4, 9}

    def test_observable_values(self, figure3_program):
        p = figure3_program
        ld3 = p.threads[0].ops[2].uid
        assert observable_values(p, ld3) == [INIT_VALUE, 5, 8, 10]


class TestCandidateRules:
    def test_local_store_shadows_init(self, small_program):
        cands = candidate_sources(small_program)
        for load_uid, sources in cands.items():
            load_op = small_program.op(load_uid)
            first = sources[0]
            if first is INIT or first == INIT:
                # no preceding local store to this address
                assert not any(
                    op.is_store and op.addr == load_op.addr and op.uid < load_uid
                    for op in small_program.threads[load_op.thread].ops)
            else:
                local = small_program.op(first)
                assert local.thread == load_op.thread
                assert local.addr == load_op.addr
                assert local.uid < load_uid

    def test_only_latest_local_store_is_candidate(self, small_program):
        cands = candidate_sources(small_program)
        for load_uid, sources in cands.items():
            load_op = small_program.op(load_uid)
            locals_ = [s for s in sources if isinstance(s, int)
                       and small_program.op(s).thread == load_op.thread]
            assert len(locals_) <= 1

    def test_all_other_thread_stores_present(self, small_program):
        cands = candidate_sources(small_program)
        for load_uid, sources in cands.items():
            load_op = small_program.op(load_uid)
            expected = {st.uid for st in small_program.stores_to(load_op.addr)
                        if st.thread != load_op.thread}
            others = {s for s in sources if isinstance(s, int)
                      and small_program.op(s).thread != load_op.thread}
            assert others == expected

    def test_every_load_covered(self, small_program):
        cands = candidate_sources(small_program)
        assert set(cands) == {op.uid for op in small_program.loads}

    def test_own_future_stores_excluded(self, small_program):
        cands = candidate_sources(small_program)
        for load_uid, sources in cands.items():
            load_op = small_program.op(load_uid)
            for s in sources:
                if isinstance(s, int) and small_program.op(s).thread == load_op.thread:
                    assert s < load_uid
