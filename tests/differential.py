"""Shared differential-contract helpers: the four-way test plane.

One fixture, not four copies: every checking-pipeline suite (delta,
packed, poly — and the contract tests over the paper configurations and
the litmus corpus) drives the same helpers to run a campaign, produce
one report per pipeline and assert the two-level agreement contract:

* **within the graph family** (graphs/delta/packed) reports are
  byte-identical — same :meth:`CheckReport.summary`: verdict methods,
  violation indices, witness cycles, ``sorted_vertices`` accounting;
* **across algorithm families** (graph family vs the poly frontier
  closure) the *violation digest* — graph count plus violating indices
  — is identical, while family-specific statistics legitimately differ
  (poly sorts nothing; its witness is the shortest rule cycle, not the
  first one Kahn's algorithm trips over).

Poly witnesses are additionally validated structurally: every hop of a
reported cycle must be a real edge of the independently rebuilt
constraint graph, and the cycle must close.
"""

from repro.checker import (
    CollectiveChecker,
    PackedChecker,
    PackedPlan,
    PolyChecker,
    PolySignatureSource,
    SignatureDeltaSource,
    violation_digest,
)
from repro.graph import GraphBuilder
from repro.instrument import SignatureCodec
from repro.sim import OperationalExecutor, platform_for_isa
from repro.testgen import generate

try:
    import numpy  # noqa: F401  (backend availability probe)
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: the numpy rows drop out when only the fallback backend is installed
BACKENDS = ("numpy", "array") if HAVE_NUMPY else ("array",)

#: pipelines whose reports must agree byte-for-byte (one algorithm family)
GRAPH_FAMILY = ("graphs", "delta", "packed")
#: every batch pipeline of the differential contract
ALL_PIPELINES = ("graphs", "delta", "packed", "poly")


def every_rf(codec):
    """Every encodable reads-from assignment of a small program —
    exhaustive outcome-space enumeration for ground-truth pins."""
    import itertools

    loads = sorted(codec.candidates)
    for combo in itertools.product(*(codec.candidates[u] for u in loads)):
        yield dict(zip(loads, combo))


def run_unique_signatures(cfg, iterations, seed=8):
    """Sorted unique signatures of one in-process campaign."""
    program = generate(cfg)
    platform = platform_for_isa(cfg.isa)
    codec = SignatureCodec(program, platform.register_width)
    executor = OperationalExecutor(program, platform.memory_model, platform,
                                   seed=seed, layout=cfg.layout)
    signatures = {codec.encode(e.rf) for e in executor.run(iterations)}
    return program, codec, sorted(signatures)


def reference_reports(program, codec, signatures, model):
    """(legacy collective, delta collective) over the same block."""
    builder = GraphBuilder(program, model, ws_mode="static")
    source = SignatureDeltaSource(codec, builder, signatures)
    graphs = [builder.build(codec.decode(sig)) for sig in signatures]
    return (CollectiveChecker().check(graphs),
            CollectiveChecker().check_deltas(source))


def packed_report(program, codec, signatures, model, backend=None,
                  initial_key=None):
    plan = PackedPlan(codec, GraphBuilder(program, model, ws_mode="static"),
                      signatures, backend=backend)
    return PackedChecker(initial_key).check(plan), plan


def poly_report(program, codec, signatures, model):
    source = PolySignatureSource(codec, model, signatures)
    return PolyChecker().check(source), source


def pipeline_report(pipeline, program, codec, signatures, model,
                    backend=None):
    """One pipeline's collective report over a sorted signature block."""
    if pipeline == "graphs":
        builder = GraphBuilder(program, model, ws_mode="static")
        graphs = [builder.build(codec.decode(sig)) for sig in signatures]
        return CollectiveChecker().check(graphs)
    if pipeline == "delta":
        builder = GraphBuilder(program, model, ws_mode="static")
        return CollectiveChecker().check_deltas(
            SignatureDeltaSource(codec, builder, signatures))
    if pipeline == "packed":
        return packed_report(program, codec, signatures, model,
                             backend=backend)[0]
    if pipeline == "poly":
        return poly_report(program, codec, signatures, model)[0]
    raise ValueError("unknown differential pipeline %r" % (pipeline,))


def assert_poly_witnesses_render(program, codec, signatures, model, report):
    """Structural validity of poly witness cycles.

    Each violating verdict's cycle must close (first == last) and take
    only hops that exist as edges of the independently rebuilt
    constraint graph for that signature — i.e. the witness is made of
    genuine ordering facts, not frontier artifacts.
    """
    builder = GraphBuilder(program, model, ws_mode="static")
    for verdict in report.violations:
        cycle = verdict.cycle
        assert cycle is not None and len(cycle) >= 3
        assert cycle[0] == cycle[-1]
        graph = builder.build(codec.decode(signatures[verdict.index]))
        for src, dst in zip(cycle, cycle[1:]):
            assert dst in graph.adjacency.get(src, ()), \
                (verdict.index, src, dst)


def assert_differential_contract(program, codec, signatures, model,
                                 pipelines=ALL_PIPELINES, backend=None,
                                 expect_violations=None):
    """Run every pipeline over one block and assert the agreement
    contract; returns the per-pipeline report dict for extra checks."""
    reports = {p: pipeline_report(p, program, codec, signatures, model,
                                  backend=backend)
               for p in pipelines}
    family = [reports[p] for p in pipelines if p in GRAPH_FAMILY]
    for other in family[1:]:
        assert other.summary() == family[0].summary()
    digests = [violation_digest(reports[p]) for p in pipelines]
    for other in digests[1:]:
        assert other == digests[0]
    if expect_violations is not None:
        violating = bool(digests[0]["violations"])
        assert violating == expect_violations, digests[0]
    if "poly" in reports:
        assert_poly_witnesses_render(program, codec, signatures, model,
                                     reports["poly"])
    return reports
