"""Unit tests for the conventional per-graph checker."""

from repro.checker import COMPLETE, BaselineChecker
from repro.graph import PO, ConstraintGraph, Edge


def chain_graph(n, extra=()):
    edges = [Edge(i, i + 1, PO) for i in range(n - 1)]
    edges += [Edge(u, v, PO) for u, v in extra]
    return ConstraintGraph(n, edges)


class TestBaseline:
    def test_empty_input(self):
        report = BaselineChecker().check([])
        assert report.num_graphs == 0
        assert report.violations == []

    def test_all_valid(self):
        report = BaselineChecker().check([chain_graph(5) for _ in range(3)])
        assert report.num_graphs == 3
        assert not report.violations
        assert all(v.method == COMPLETE for v in report.verdicts)

    def test_detects_violation_with_cycle(self):
        graphs = [chain_graph(5), chain_graph(5, extra=[(4, 0)]), chain_graph(5)]
        report = BaselineChecker().check(graphs)
        assert [v.violation for v in report.verdicts] == [False, True, False]
        cycle = report.verdicts[1].cycle
        assert cycle[0] == cycle[-1]

    def test_computation_proxy_counts_all_vertices(self):
        report = BaselineChecker().check([chain_graph(7) for _ in range(4)])
        assert report.sorted_vertices == 7 * 4
        assert report.num_vertices_per_graph == 7

    def test_elapsed_recorded(self):
        report = BaselineChecker().check([chain_graph(5)])
        assert report.elapsed >= 0.0
