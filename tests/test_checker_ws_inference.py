"""Unit tests for write-serialization inference from rf + ppo."""

import pytest

from repro.checker import infer_constraint_graph
from repro.graph import WS, topological_sort
from repro.isa import TestProgram, load, store
from repro.mcm import SC, TSO, WEAK
from repro.sim import OperationalExecutor
from repro.testgen import TestConfig, generate
from repro.testgen.litmus import all_litmus_tests, corr, message_passing


class TestInferenceRules:
    def test_r1_infers_ws_from_happens_before(self):
        """If s' -> reader(s), then ws s' -> s."""
        # t0: st x #1 ; st y #2       t1: ld y (reads #2) ; st x #3
        # t2: ld x (reads #1)
        # #3 happens-before? No — but reader of #1 is after...
        p = TestProgram.from_ops(
            [
                [store(0, 0, 0, 1), store(0, 1, 1, 2)],
                [load(1, 0, 1), store(1, 1, 0, 3)],
            ],
            num_addresses=2)
        ld_y = p.threads[1].ops[0].uid
        st1 = p.threads[0].ops[0].uid
        st3 = p.threads[1].ops[1].uid
        # Under SC: st1 -> st2 -> ld_y -> st3, and any reader of st1...
        # Add a load in thread 0 that reads st3 after its own stores:
        # keep simple: directly check that st1 -> st3 is inferred via a
        # reader of st3 that happens after everything? Use closure below.
        graph = infer_constraint_graph(p, SC, {ld_y: p.threads[0].ops[1].uid})
        # st1 happens-before ld_y (po st1->st2, rf st2->ld_y); ld_y is not
        # a reader of x, so no x inference -- but the graph must be sound:
        assert topological_sort(range(p.num_ops), graph.adjacency) is not None

    def test_r2_adds_fr_for_readers(self):
        """s ->ws s' forces every reader of s before s'."""
        # t0: st x #1 ; t1: ld x (reads #1) ; t1: st x #2 -- same thread
        p = TestProgram.from_ops(
            [
                [store(0, 0, 0, 1)],
                [load(1, 0, 0), store(1, 1, 0, 2)],
            ],
            num_addresses=1)
        ld = p.threads[1].ops[0].uid
        st1, st2 = p.threads[0].ops[0].uid, p.threads[1].ops[1].uid
        graph = infer_constraint_graph(p, SC, {ld: st1})
        # ld -> st2 by po (SC); st1 -> st2 inferred by R1 (st1 reader ld
        # happens before st2? -- actually rf st1->ld, po ld->st2 so
        # st1 -> st2 must be in ws by R1's contrapositive reasoning)
        assert (ld, st2) in graph.edge_pairs or st2 in graph.successors(ld)

    def test_detects_corr_outcome(self):
        lt = corr()
        graph = infer_constraint_graph(lt.program, TSO, lt.interesting_rf)
        assert topological_sort(range(lt.program.num_ops), graph.adjacency) is None

    def test_detects_mp_under_tso_allows_under_weak(self):
        lt = message_passing()
        g_tso = infer_constraint_graph(lt.program, TSO, lt.interesting_rf)
        assert topological_sort(range(lt.program.num_ops), g_tso.adjacency) is None
        g_weak = infer_constraint_graph(lt.program, WEAK, lt.interesting_rf)
        assert topological_sort(range(lt.program.num_ops), g_weak.adjacency) is not None


class TestLitmusVerdictsByInference:
    @pytest.mark.parametrize("model_name", ["sc", "tso", "weak"])
    def test_rf_only_litmus_outcomes(self, model_name):
        """Inference reproduces every rf-characterised litmus verdict
        (2+2W is excluded: its outcome is a pure ws cycle that rf alone
        cannot witness — the known incompleteness of rf-only checking)."""
        from repro.mcm import get_model

        for lt in all_litmus_tests():
            if lt.interesting_ws is not None:
                continue
            graph = infer_constraint_graph(
                lt.program, get_model(model_name), lt.interesting_rf)
            cyclic = topological_sort(
                range(lt.program.num_ops), graph.adjacency) is None
            assert cyclic == (not lt.allowed[model_name]), (lt.name, model_name)


class TestSoundness:
    @pytest.mark.parametrize("model", [SC, TSO, WEAK], ids=lambda m: m.name)
    def test_never_flags_compliant_executions(self, model):
        """Inference only adds implied edges: no false cycles on
        model-compliant executions."""
        cfg = TestConfig(threads=3, ops_per_thread=20, addresses=6, seed=21)
        p = generate(cfg)
        ex = OperationalExecutor(p, model, seed=2)
        for e in ex.run(60):
            graph = infer_constraint_graph(p, model, e.rf)
            assert topological_sort(range(p.num_ops), graph.adjacency) is not None

    def test_inferred_ws_respects_true_coherence_order(self):
        """Every inferred ws edge agrees with the executor's ground truth."""
        cfg = TestConfig(threads=2, ops_per_thread=20, addresses=4, seed=23)
        p = generate(cfg)
        ex = OperationalExecutor(p, SC, seed=3)
        for e in ex.run(40):
            graph = infer_constraint_graph(p, SC, e.rf)
            position = {addr: {uid: i for i, uid in enumerate(chain)}
                        for addr, chain in e.ws.items()}
            for (u, v) in graph.edge_pairs:
                if graph.edge_kind(u, v) == WS:
                    addr = p.op(u).addr
                    assert position[addr][u] < position[addr][v]
