"""Clock-discipline regression tests (satellite of repro.obs v2).

Durations must come from the monotonic ``time.perf_counter()`` only;
the wall clock (``time.time()``) is reserved for event timestamps.  A
stepped wall clock (NTP correction, manual date change) must therefore
never produce negative or inflated span durations, and a pathological
monotonic source must clamp to zero rather than go negative.
"""

import time

from repro import obs
from repro.fleet.progress import FleetProgress
from repro.obs.events import EventLog
from repro.obs.span import SpanTracer, TimedSpan


class TestWallClockWarpIsHarmless:
    def test_backward_wall_step_cannot_make_spans_negative(self, monkeypatch):
        warped = [time.time()]

        def warped_wall():
            warped[0] -= 3600.0         # an hour backwards per call
            return warped[0]

        monkeypatch.setattr(time, "time", warped_wall)
        tracer = SpanTracer()
        with tracer.span("phase"):
            pass
        node = tracer.node("phase")
        assert node.count == 1
        assert 0.0 <= node.total_s < 1.0

    def test_forward_wall_step_cannot_inflate_spans(self, monkeypatch):
        warped = [time.time()]

        def warped_wall():
            warped[0] += 86400.0        # a day forwards per call
            return warped[0]

        monkeypatch.setattr(time, "time", warped_wall)
        with TimedSpan() as span:
            pass
        assert 0.0 <= span.elapsed < 1.0

    def test_fleet_progress_elapsed_ignores_wall_clock(self, monkeypatch):
        ticks = iter([100.0, 103.5])
        monkeypatch.setattr(time, "perf_counter", lambda: next(ticks))
        monkeypatch.setattr(time, "time", lambda: -1e9)
        tracker = FleetProgress()     # first tick
        snap = tracker.snapshot()     # second tick
        assert snap.elapsed_s == 3.5


class TestBrokenMonotonicSourceClamps:
    def test_timed_span_clamps_to_zero(self, monkeypatch):
        ticks = iter([10.0, 4.0])     # a (hypothetical) backwards source
        monkeypatch.setattr(time, "perf_counter", lambda: next(ticks))
        with TimedSpan() as span:
            pass
        assert span.elapsed == 0.0

    def test_tracer_totals_never_go_negative(self, monkeypatch):
        ticks = iter([10.0, 4.0, 20.0, 21.0])
        monkeypatch.setattr(time, "perf_counter", lambda: next(ticks))
        tracer = SpanTracer()
        with tracer.span("phase"):    # broken interval: clamped to 0
            pass
        with tracer.span("phase"):    # sane interval: 1s
            pass
        node = tracer.node("phase")
        assert node.count == 2
        assert node.total_s == 1.0


class TestEventTimestampsAreWallClock:
    def test_event_ts_tracks_time_time(self, monkeypatch):
        monkeypatch.setattr(time, "time", lambda: 1_234_567.25)
        log = EventLog()
        event = log.emit("campaign.plan", iterations=1, blocks=1)
        assert event.ts == 1_234_567.25

    def test_span_duration_and_event_ts_use_different_clocks(
            self, monkeypatch):
        # freeze the wall clock entirely: events all share one ts while
        # span durations (perf_counter) still advance
        monkeypatch.setattr(time, "time", lambda: 42.0)
        handle = obs.Observability(enabled=True)
        with handle.span("work"):
            time.sleep(0.01)
        handle.emit("campaign.plan", iterations=1, blocks=1)
        assert handle.events.events()[0].ts == 42.0
        assert handle.tracer.node("work").total_s > 0.0
