"""The CLI's pipeline/cross-check surface matches the checker registry.

``--check-pipeline`` and ``--cross-check`` appear on several
subcommands; their choices must come from the single registry in
:mod:`repro.checker.dispatch` — not hand-maintained copies that drift
(the pre-poly tree shipped run/check/serve with three different help
strings and choice sets).  These tests introspect the built argparse
tree and pin every occurrence to the registry tuples.
"""

import pytest

from repro.checker import CROSS_CHECKS, PIPELINES, SERVE_PIPELINES
from repro.cli import build_parser


def subcommands(parser):
    action = parser._subparsers._group_actions[0]
    return action.choices


def option(parser, flag):
    for action in parser._actions:
        if flag in action.option_strings:
            return action
    return None


@pytest.fixture(scope="module")
def commands():
    return subcommands(build_parser())


class TestRegistry:
    def test_registry_shape(self):
        assert PIPELINES == ("graphs", "delta", "packed", "poly", "auto")
        # serve sessions stream deltas; the batch-only graphs pipeline
        # cannot finalize a stream
        assert set(SERVE_PIPELINES) <= set(PIPELINES)
        assert "poly" in SERVE_PIPELINES and "auto" in SERVE_PIPELINES
        assert CROSS_CHECKS == ("feasible", "poly")


class TestCheckPipelineFlag:
    @pytest.mark.parametrize("command", ("run", "suite", "check"))
    def test_batch_subcommands_use_full_registry(self, commands, command):
        action = option(commands[command], "--check-pipeline")
        assert action is not None, command
        assert tuple(action.choices) == PIPELINES, command

    def test_serve_uses_stream_registry(self, commands):
        action = option(commands["serve"], "--check-pipeline")
        assert action is not None
        assert tuple(action.choices) == SERVE_PIPELINES

    def test_every_occurrence_is_registry_backed(self, commands):
        """No subcommand may carry a hand-rolled pipeline choice set."""
        for name, sub in commands.items():
            action = option(sub, "--check-pipeline")
            if action is None:
                continue
            assert tuple(action.choices) in (PIPELINES, SERVE_PIPELINES), \
                name


class TestCrossCheckFlag:
    @pytest.mark.parametrize("command", ("run", "check", "mutate"))
    def test_cross_check_choices(self, commands, command):
        action = option(commands[command], "--cross-check")
        assert action is not None, command
        assert tuple(action.choices) == CROSS_CHECKS, command

    def test_cross_check_defaults_off(self, commands):
        for command in ("run", "check", "mutate"):
            action = option(commands[command], "--cross-check")
            assert action.default is None, command


class TestParsing:
    def test_run_accepts_poly(self, commands):
        args = build_parser().parse_args(
            ["run", "--check-pipeline", "poly", "--cross-check", "poly"])
        assert args.check_pipeline == "poly"
        assert args.cross_check == "poly"

    def test_run_rejects_unknown_pipeline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--check-pipeline", "polynomial"])

    def test_serve_rejects_batch_only_graphs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--check-pipeline", "graphs"])
