"""Tests for the Chrome trace-event exporter (repro.obs.traceviz)."""

import json

import pytest

from repro.obs.events import EventLog
from repro.obs.report import SCHEMA, SCHEMA_VERSION, span_names
from repro.obs.traceviz import (
    FLEET_PID,
    PIPELINE_PID,
    TraceSchemaError,
    build_trace,
    trace_from_events,
    trace_from_report,
    trace_span_names,
    validate_trace,
    write_trace,
)


def make_report(spans):
    return {"schema": SCHEMA, "version": SCHEMA_VERSION, "meta": {},
            "summary": {}, "metrics": {}, "spans": spans}


def span(name, count=1, total_s=1.0, children=(), errors=0):
    node = {"name": name, "count": count, "total_s": total_s,
            "children": list(children)}
    if errors:
        node["errors"] = errors
    return node


class TestTraceFromReport:
    def test_slices_are_complete_events_with_real_widths(self):
        report = make_report([span("run", total_s=2.0,
                                   children=[span("instrument",
                                                  total_s=0.5),
                                             span("execute",
                                                  total_s=1.5)])])
        events = trace_from_report(report)
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"run", "instrument", "execute"}
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "span"
            assert event["pid"] == PIPELINE_PID
        assert by_name["run"]["dur"] == 2_000_000
        assert by_name["instrument"]["dur"] == 500_000
        assert by_name["execute"]["dur"] == 1_500_000

    def test_synthesized_layout_nests_children_inside_parent(self):
        report = make_report([span("a", total_s=1.0,
                                   children=[span("a1", total_s=0.25),
                                             span("a2", total_s=0.5)]),
                              span("b", total_s=2.0)])
        events = {e["name"]: e for e in trace_from_report(report)}
        a, a1, a2, b = (events[k] for k in ("a", "a1", "a2", "b"))
        # siblings lay out left-to-right
        assert a["ts"] == 0
        assert b["ts"] == a["ts"] + a["dur"]
        # children start at the parent's left edge and stay inside it
        assert a1["ts"] == a["ts"]
        assert a2["ts"] == a1["ts"] + a1["dur"]
        assert a2["ts"] + a2["dur"] <= a["ts"] + a["dur"]

    def test_args_keep_aggregation_facts_and_path(self):
        report = make_report([span("run", count=4, total_s=2.0,
                                   children=[span("check", errors=1)])])
        events = {e["name"]: e for e in trace_from_report(report)}
        assert events["run"]["args"]["count"] == 4
        assert events["run"]["args"]["mean_s"] == 0.5
        assert events["check"]["args"]["path"] == "run/check"
        assert events["check"]["args"]["errors"] == 1
        assert "errors" not in events["run"]["args"]

    def test_span_names_round_trip(self):
        report = make_report([span("run", children=[span("x"), span("y")]),
                              span("check")])
        trace = build_trace(report=report)
        assert trace_span_names(trace) == span_names(report)

    def test_invalid_report_is_rejected(self):
        with pytest.raises(Exception):
            trace_from_report({"schema": "nope"})


class TestTraceFromEvents:
    def _fleet_log(self):
        log = EventLog()
        log.emit("campaign.plan", iterations=20, blocks=2)
        log.emit("fleet.plan", shards=2, jobs=2, iterations=20)
        log.emit("shard.launch", shard=0, attempt=1, iterations=10)
        log.emit("shard.launch", shard=1, attempt=1, iterations=10)
        log.emit("fleet.heartbeat", shard=0, iterations_done=5,
                 iterations_total=10, unique_signatures=2, crashes=0)
        log.emit("shard.done", shard=0, attempts=1, iterations=10,
                 elapsed_s=0.1)
        log.emit("shard.retry", shard=1, attempt=1)
        log.emit("shard.launch", shard=1, attempt=2, iterations=10)
        log.emit("shard.done", shard=1, attempts=2, iterations=10,
                 elapsed_s=0.2)
        return log

    def test_shard_slices_and_outcomes(self):
        events = trace_from_events(self._fleet_log().events())
        slices = [e for e in events if e["ph"] == "X"]
        outcomes = sorted((s["tid"], s["args"]["outcome"]) for s in slices)
        # shard 0 ok; shard 1 died then relaunched ok
        assert outcomes == [(1, "ok"), (2, "died"), (2, "ok")]
        for s in slices:
            assert s["pid"] == FLEET_PID
            assert s["dur"] >= 1

    def test_heartbeats_become_counters(self):
        events = trace_from_events(self._fleet_log().events())
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"iterations_done": 5,
                                      "unique_signatures": 2}
        assert counters[0]["tid"] == 1

    def test_run_scope_instants_land_on_pipeline_track(self):
        events = trace_from_events(self._fleet_log().events())
        instants = {e["name"]: e for e in events if e["ph"] == "i"}
        plan = instants["campaign.plan"]
        assert plan["pid"] == PIPELINE_PID and plan["s"] == "t"
        fleet_plan = instants["fleet.plan"]
        assert fleet_plan["pid"] == FLEET_PID and fleet_plan["s"] == "p"

    def test_unclosed_shard_marked_unfinished(self):
        log = EventLog()
        log.emit("shard.launch", shard=0, attempt=1, iterations=5)
        log.emit("fleet.heartbeat", shard=0, iterations_done=1,
                 iterations_total=5, unique_signatures=0, crashes=0)
        slices = [e for e in trace_from_events(log.events())
                  if e["ph"] == "X"]
        assert [s["args"]["outcome"] for s in slices] == ["unfinished"]

    def test_crash_slice_carries_error(self):
        log = EventLog()
        log.emit("shard.launch", shard=0, attempt=1, iterations=5)
        log.emit("shard.crash", shard=0, attempts=3, error="boom")
        slices = [e for e in trace_from_events(log.events())
                  if e["ph"] == "X"]
        assert slices[0]["args"]["outcome"] == "crash"
        assert slices[0]["args"]["error"] == "boom"

    def test_empty_log_gives_empty_trace(self):
        assert trace_from_events([]) == []


class TestBuildAndValidate:
    def test_build_trace_combines_sources_with_metadata(self):
        report = make_report([span("run")])
        log = EventLog()
        log.emit("shard.launch", shard=0, attempt=1, iterations=1)
        log.emit("shard.done", shard=0, attempts=1, iterations=1,
                 elapsed_s=0.0)
        trace = build_trace(report=report, events=log.events(),
                            meta={"config": "ARM-2-50-32"})
        validate_trace(trace)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases >= {"M", "X"}
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"repro pipeline", "repro fleet"}
        assert trace["otherData"]["config"] == "ARM-2-50-32"

    def test_validate_trace_rejects_malformed_documents(self):
        with pytest.raises(TraceSchemaError, match="JSON object"):
            validate_trace([])
        with pytest.raises(TraceSchemaError, match="'traceEvents'"):
            validate_trace({})
        with pytest.raises(TraceSchemaError, match="unknown phase"):
            validate_trace({"traceEvents": [{"ph": "Z", "name": "x",
                                             "pid": 1}]})
        with pytest.raises(TraceSchemaError, match="'name'"):
            validate_trace({"traceEvents": [{"ph": "i", "name": "",
                                             "pid": 1, "ts": 0}]})
        with pytest.raises(TraceSchemaError, match="'ts'"):
            validate_trace({"traceEvents": [{"ph": "i", "name": "x",
                                             "pid": 1, "ts": -5}]})
        with pytest.raises(TraceSchemaError, match="'dur'"):
            validate_trace({"traceEvents": [{"ph": "X", "name": "x",
                                             "pid": 1, "ts": 0}]})

    def test_write_trace_round_trips_and_validates(self, tmp_path):
        trace = build_trace(report=make_report([span("run")]))
        path = tmp_path / "trace.json"
        write_trace(trace, path)
        loaded = json.loads(path.read_text())
        validate_trace(loaded)
        assert trace_span_names(loaded) == {"run"}

    def test_write_trace_refuses_invalid_documents(self, tmp_path):
        with pytest.raises(TraceSchemaError):
            write_trace({"traceEvents": [{"bad": True}]},
                        tmp_path / "nope.json")
