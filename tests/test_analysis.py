"""Unit tests for similarity, k-medoids and statistics."""

import math

import numpy as np
import pytest

from repro.analysis import (
    distance_matrix,
    estimated_signature_bits,
    estimated_signature_cardinality,
    k_medoids,
    limit_study,
    rf_distance,
    uniqueness,
)
from repro.isa import INIT
from repro.sim import OperationalExecutor
from repro.mcm import SC
from repro.testgen import TestConfig, generate


class TestRfDistance:
    def test_identical_is_zero(self):
        rf = {1: 5, 2: INIT}
        assert rf_distance(rf, dict(rf)) == 0

    def test_counts_differing_loads(self):
        a = {1: 5, 2: INIT, 3: 7}
        b = {1: 5, 2: 9, 3: 8}
        assert rf_distance(a, b) == 2

    def test_mismatched_loads_rejected(self):
        with pytest.raises(ValueError):
            rf_distance({1: 5}, {2: 5})

    def test_matrix_matches_pairwise(self):
        rfs = [{1: 5, 2: INIT}, {1: 5, 2: 9}, {1: 6, 2: 9}]
        m = distance_matrix(rfs)
        for i in range(3):
            for j in range(3):
                assert m[i, j] == rf_distance(rfs[i], rfs[j])

    def test_matrix_empty(self):
        assert distance_matrix([]).shape == (0, 0)

    def test_matrix_symmetric_zero_diagonal(self):
        p = generate(TestConfig(threads=2, ops_per_thread=20, addresses=4, seed=2))
        ex = OperationalExecutor(p, SC, seed=1, uniform_random=True)
        rfs = [e.rf for e in ex.run(30)]
        m = distance_matrix(rfs)
        assert (m == m.T).all()
        assert (np.diag(m) == 0).all()


class TestKMedoids:
    def _matrix(self):
        p = generate(TestConfig(threads=2, ops_per_thread=20, addresses=4, seed=2))
        ex = OperationalExecutor(p, SC, seed=1, uniform_random=True)
        rfs = [e.rf for e in ex.run(80)]
        return distance_matrix(rfs)

    def test_total_distance_decreases_with_k(self):
        """Figure 6's defining property."""
        m = self._matrix()
        series = limit_study(m, ks=(1, 2, 5, 10, 30))
        totals = [t for _, t in series]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_k_equal_n_gives_zero(self):
        m = self._matrix()
        assert k_medoids(m, m.shape[0]).total_distance == 0

    def test_assignment_points_to_closest_medoid(self):
        m = self._matrix()
        result = k_medoids(m, 5, seed=3)
        for i, cluster in enumerate(result.assignment):
            d_assigned = m[i, result.medoids[cluster]]
            best = min(m[i, mm] for mm in result.medoids)
            assert d_assigned == best

    def test_empty_input(self):
        result = k_medoids(np.zeros((0, 0), dtype=np.int32), 3)
        assert result.k == 0 and result.total_distance == 0

    def test_k_clamped_to_n(self):
        m = np.array([[0, 1], [1, 0]])
        assert k_medoids(m, 10).k == 2

    def test_mean_distance(self):
        m = np.array([[0, 2], [2, 0]])
        r = k_medoids(m, 1, seed=0)
        assert r.mean_distance == r.total_distance / 2


class TestCardinalityEstimate:
    def test_paper_example_is_2_to_68(self):
        """S=L=50, A=32, T=2 -> ~2.7e20 ~ 2^68 (paper Section 3.2)."""
        est = estimated_signature_cardinality(50, 50, 32, 2)
        assert 67 <= math.log2(est) <= 69

    def test_single_thread_has_one_outcome(self):
        assert estimated_signature_cardinality(50, 50, 32, 1) == 1.0

    def test_bits_scale_with_threads(self):
        two = estimated_signature_bits(TestConfig(threads=2))
        seven = estimated_signature_bits(TestConfig(threads=7))
        assert seven > two

    def test_bits_shrink_with_more_addresses(self):
        few = estimated_signature_bits(TestConfig(threads=4, addresses=32))
        many = estimated_signature_bits(TestConfig(threads=4, addresses=128))
        assert many < few


class TestUniqueness:
    def test_fraction(self):
        from repro.harness import Campaign

        campaign = Campaign(config=TestConfig(threads=2, ops_per_thread=15,
                                              addresses=8, seed=3), seed=1)
        result = campaign.run(50)
        stats = uniqueness(result)
        assert stats.iterations == 50
        assert 0 < stats.unique <= 50
        assert stats.fraction == stats.unique / 50
