"""Unit tests for memory consistency models and their ppo edges."""

import networkx as nx
import pytest

from repro.isa import TestProgram, barrier, load, store
from repro.mcm import SC, TSO, WEAK, get_model
from repro.testgen import TestConfig, generate


def closure_pairs(model, thread_program):
    """Transitive closure of the model's reduced ppo edges + barriers."""
    g = nx.DiGraph()
    g.add_nodes_from(op.uid for op in thread_program.ops)
    g.add_edges_from(model.ppo_edges(thread_program))
    closure = nx.transitive_closure(g)
    return set(closure.edges())


def expected_pairs(model, thread_program):
    """Direct O(n^2) enumeration of what ppo + barrier ordering implies."""
    ops = thread_program.ops
    pairs = set()
    for i, a in enumerate(ops):
        for b in ops[i + 1:]:
            if a.is_barrier or b.is_barrier:
                pairs.add((a.uid, b.uid))
            elif any(m.is_barrier for m in ops[i + 1:b.index]):
                pairs.add((a.uid, b.uid))
            elif model.orders(a, b):
                pairs.add((a.uid, b.uid))
    return pairs


def non_barrier_pairs(pairs, program):
    return {(u, v) for u, v in pairs
            if not program.op(u).is_barrier and not program.op(v).is_barrier}


@pytest.mark.parametrize("model", [SC, TSO, WEAK], ids=lambda m: m.name)
class TestPpoClosure:
    def test_closure_covers_direct_orders(self, model):
        p = generate(TestConfig(threads=1, ops_per_thread=30, addresses=4, seed=2))
        closure = closure_pairs(model, p.threads[0])
        for u, v in expected_pairs(model, p.threads[0]):
            assert (u, v) in closure, (u, v)

    def test_closure_is_not_too_strong(self, model):
        p = generate(TestConfig(threads=1, ops_per_thread=30, addresses=4, seed=2))
        closure = non_barrier_pairs(closure_pairs(model, p.threads[0]), p)
        expected = non_barrier_pairs(expected_pairs(model, p.threads[0]), p)
        assert closure <= expected

    def test_with_barriers(self, model):
        p = generate(TestConfig(threads=1, ops_per_thread=20, addresses=4,
                                barrier_fraction=0.2, seed=5))
        closure = non_barrier_pairs(closure_pairs(model, p.threads[0]), p)
        expected = non_barrier_pairs(expected_pairs(model, p.threads[0]), p)
        assert closure == expected


class TestOrders:
    def setup_method(self):
        self.ld_a = load(0, 0, 0)
        self.ld_a2 = load(0, 1, 0)
        self.ld_b = load(0, 1, 1)
        self.st_a = store(0, 2, 0, 1)
        self.st_a2 = store(0, 3, 0, 2)
        self.st_b = store(0, 3, 1, 3)

    def test_sc_orders_everything(self):
        assert SC.orders(self.ld_a, self.st_b)
        assert SC.orders(self.st_a, self.ld_b)
        assert SC.orders(self.st_a, self.st_b)

    def test_tso_relaxes_store_load_only(self):
        assert not TSO.orders(self.st_a, self.ld_b)
        assert not TSO.orders(self.st_a, self.ld_a2)   # even same address
        assert TSO.orders(self.ld_a, self.st_b)
        assert TSO.orders(self.ld_a, self.ld_b)
        assert TSO.orders(self.st_a, self.st_a2)

    def test_weak_orders_same_address_only(self):
        assert WEAK.orders(self.ld_a, self.ld_a2)
        assert WEAK.orders(self.ld_a, self.st_a)
        assert WEAK.orders(self.st_a, self.st_a2)
        assert not WEAK.orders(self.st_a, self.ld_a2)  # forwarding exemption
        assert not WEAK.orders(self.ld_a, self.ld_b)
        assert not WEAK.orders(self.ld_a, self.st_b)
        assert not WEAK.orders(self.st_a, self.st_b)


class TestBarrierEdges:
    def test_barrier_becomes_ordering_hub(self):
        p = TestProgram.from_ops(
            [[store(0, 0, 0, 1), barrier(0, 1), load(0, 2, 1)]], num_addresses=2)
        edges = set(WEAK.ppo_edges(p.threads[0]))
        bar = p.threads[0].ops[1].uid
        assert (p.threads[0].ops[0].uid, bar) in edges
        assert (bar, p.threads[0].ops[2].uid) in edges

    def test_consecutive_barriers(self):
        p = TestProgram.from_ops(
            [[barrier(0, 0), barrier(0, 1), load(0, 2, 0)]], num_addresses=1)
        edges = list(WEAK.ppo_edges(p.threads[0]))
        assert edges  # no crash, barrier->load edge exists
        b2 = p.threads[0].ops[1].uid
        ld = p.threads[0].ops[2].uid
        assert (b2, ld) in set(edges)


class TestRegistry:
    def test_get_model_by_name(self):
        assert get_model("sc") is SC
        assert get_model("TSO") is TSO
        assert get_model("Weak") is WEAK

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            get_model("power")

    def test_store_atomicity_flags(self):
        assert SC.multiple_copy_atomic
        assert TSO.multiple_copy_atomic
        assert WEAK.multiple_copy_atomic

    def test_repr(self):
        assert "tso" in repr(TSO)
