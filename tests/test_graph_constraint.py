"""Unit tests for the constraint-graph data structure."""

from repro.graph import FR, PO, RF, WS, ConstraintGraph, Edge


class TestEdges:
    def test_add_and_query(self):
        g = ConstraintGraph(4, [Edge(0, 1, PO), Edge(1, 2, RF)])
        assert (0, 1) in g and (1, 2) in g
        assert (2, 1) not in g
        assert g.num_edges == 2

    def test_duplicate_pairs_collapse(self):
        g = ConstraintGraph(3)
        g.add_edge(Edge(0, 1, PO))
        g.add_edge(Edge(0, 1, RF))
        assert g.num_edges == 1
        assert g.edge_kind(0, 1) == PO     # first kind wins

    def test_self_loops_ignored(self):
        g = ConstraintGraph(2, [Edge(1, 1, WS)])
        assert g.num_edges == 0

    def test_successors(self):
        g = ConstraintGraph(4, [Edge(0, 1, PO), Edge(0, 2, FR)])
        assert sorted(g.successors(0)) == [1, 2]
        assert g.successors(3) == []

    def test_edge_pairs_frozen(self):
        g = ConstraintGraph(3, [Edge(0, 1, PO)])
        pairs = g.edge_pairs
        g.add_edge(Edge(1, 2, WS))
        assert (1, 2) not in pairs       # snapshot semantics
        assert (1, 2) in g.edge_pairs

    def test_repr(self):
        assert "V=3" in repr(ConstraintGraph(3))

    def test_edge_repr(self):
        assert repr(Edge(1, 2, RF)) == "1-rf->2"
