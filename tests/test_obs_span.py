"""Unit tests for span tracing: nesting, exceptions, threads, reports."""

import threading

import pytest

from repro import obs
from repro.obs.span import SpanTracer, flatten


def _names(nodes):
    return [n["name"] for n in nodes]


class TestNesting:
    def test_sequential_spans_are_siblings(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert _names(tracer.tree()) == ["a", "b"]

    def test_nested_spans_build_a_tree(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        (outer,) = tracer.tree()
        assert outer["name"] == "outer"
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert _names(inner["children"]) == ["leaf"]

    def test_repeated_spans_aggregate(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        (node,) = tracer.tree()
        assert node["count"] == 3
        assert node["total_s"] >= 0.0

    def test_same_name_under_different_parents_is_distinct(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("x"):
                pass
        with tracer.span("b"):
            with tracer.span("x"):
                pass
        a, b = tracer.tree()
        assert _names(a["children"]) == ["x"]
        assert _names(b["children"]) == ["x"]

    def test_elapsed_accumulates_wall_time(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            sum(range(10_000))
        (node,) = tracer.tree()
        assert node["total_s"] > 0.0

    def test_node_lookup_by_path(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.node("a", "b").count == 1
        assert tracer.node("a", "missing") is None

    def test_reset_clears_tree(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.tree() == []


class TestExceptionSafety:
    def test_span_records_and_propagates_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("risky"):
                raise RuntimeError("boom")
        (node,) = tracer.tree()
        assert node["count"] == 1
        assert node["errors"] == 1
        assert tracer.depth() == 0

    def test_nesting_recovers_after_exception(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError
        # the next span must be a new root, not a child of the failed one
        with tracer.span("after"):
            pass
        assert _names(tracer.tree()) == ["outer", "after"]


class TestThreadLocality:
    def test_threads_do_not_see_each_others_open_spans(self):
        tracer = SpanTracer()
        barrier = threading.Barrier(2)
        failures = []

        def worker(name):
            try:
                with tracer.span(name):
                    barrier.wait(timeout=5)
                    with tracer.span("child"):
                        pass
            except Exception as exc:          # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=("t%d" % i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        roots = {n["name"]: n for n in tracer.tree()}
        # both threads' spans are roots with their own child; neither
        # nested under the other despite overlapping in time
        assert set(roots) == {"t0", "t1"}
        for node in roots.values():
            assert _names(node.get("children", [])) == ["child"]

    def test_concurrent_same_name_spans_aggregate_safely(self):
        tracer = SpanTracer()

        def worker():
            for _ in range(200):
                with tracer.span("hot"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (node,) = tracer.tree()
        assert node["count"] == 800


class TestFlattenAndReport:
    def test_flatten_depth_first(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        flat = flatten(tracer.tree())
        assert [(d, n["name"]) for d, n in flat] == [(0, "a"), (1, "b"), (0, "c")]

    def test_report_round_trips_through_validation(self, tmp_path):
        with obs.enabled_obs() as handle:
            with handle.span("generate"):
                pass
            handle.counter("c").inc()
            handle.histogram("h").observe(1.0)
            report = handle.report(meta={"command": "test"},
                                   summary={"n": 1})
        obs.validate_report(report)
        path = tmp_path / "report.json"
        obs.write_report(report, str(path))
        loaded = obs.read_report(str(path))
        assert loaded == report
        assert obs.span_names(loaded) == {"generate"}

    def test_validation_rejects_malformed_reports(self):
        good = obs.build_run_report(obs.Observability(enabled=True))
        for mutate in (
            lambda r: r.pop("schema"),
            lambda r: r.update(version=99),
            lambda r: r.update(metrics=[1]),
            lambda r: r.update(spans={"name": "x"}),
            lambda r: r.update(spans=[{"name": "", "count": 1, "total_s": 0.0}]),
            lambda r: r.update(spans=[{"name": "x", "count": True,
                                       "total_s": 0.0}]),
            lambda r: r.update(metrics={"m": {"type": "martian"}}),
        ):
            bad = {k: (dict(v) if isinstance(v, dict) else list(v)
                       if isinstance(v, list) else v)
                   for k, v in good.items()}
            mutate(bad)
            with pytest.raises(obs.ReportSchemaError):
                obs.validate_report(bad)

    def test_render_stats_shows_phases_and_metrics(self):
        with obs.enabled_obs() as handle:
            with handle.span("execute"):
                with handle.span("iteration"):
                    pass
            handle.counter("harness.iterations").inc(10)
            handle.gauge("g.x").set(2.0)
            handle.histogram("h.y").observe(4.0)
            report = handle.report()
        text = obs.render_stats(report)
        assert "execute" in text
        assert "  iteration" in text          # child indented under parent
        assert "harness.iterations" in text
        assert "g.x" in text and "h.y" in text
