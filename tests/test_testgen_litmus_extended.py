"""Tests for the extended litmus library (WRC, RWC, S, R, Co* tests)."""

import pytest

from repro.graph import GraphBuilder, topological_sort
from repro.mcm import SC, TSO, WEAK, get_model
from repro.sim import OperationalExecutor
from repro.sim.executor import Tuning
from repro.testgen.litmus import extended_litmus_tests

_STRESS = Tuning(in_order_bias=0.55, fetch_prob=0.75, start_skew=2.0)


def graph_violates(lt, model_name):
    model = get_model(model_name)
    if lt.interesting_ws is not None:
        ws = dict(lt.interesting_ws)
        for addr in range(lt.program.num_addresses):
            ws.setdefault(addr, [s.uid for s in lt.program.stores_to(addr)])
        graph = GraphBuilder(lt.program, model, ws_mode="observed").build(
            lt.interesting_rf, ws)
    else:
        graph = GraphBuilder(lt.program, model, ws_mode="static").build(
            lt.interesting_rf)
    return topological_sort(range(lt.program.num_ops), graph.adjacency) is None


class TestLibraryShape:
    def test_seven_extended_tests(self):
        assert len(extended_litmus_tests()) == 7

    def test_no_name_collisions_with_base_library(self):
        from repro.testgen import all_litmus_tests

        base = {lt.name for lt in all_litmus_tests()}
        extended = {lt.name for lt in extended_litmus_tests()}
        assert not base & extended

    def test_canonical_tso_verdicts(self):
        by = {lt.name: lt for lt in extended_litmus_tests()}
        # the catalogue's well-known TSO classifications
        assert by["R"].allowed["tso"] is True
        assert by["RWC"].allowed["tso"] is True
        assert by["SB+fence1"].allowed["tso"] is True
        assert by["WRC"].allowed["tso"] is False
        assert by["S"].allowed["tso"] is False


class TestVerdictsMatchGraphs:
    @pytest.mark.parametrize("model_name", ["sc", "tso", "weak"])
    def test_extended_litmus_verdicts(self, model_name):
        for lt in extended_litmus_tests():
            expected = (not lt.allowed[model_name]
                        and model_name not in lt.undetectable_under)
            assert graph_violates(lt, model_name) == expected, (lt.name, model_name)

    def test_cowr_documents_footnote4_blind_spot(self):
        """CoWR is forbidden everywhere, yet without the intra-thread
        store->load edge the relaxed-model graphs stay acyclic — the
        checker's known false-negative (paper footnote 4)."""
        cowr = next(lt for lt in extended_litmus_tests() if lt.name == "CoWR")
        assert not cowr.allowed["tso"]
        assert not graph_violates(cowr, "tso")
        assert graph_violates(cowr, "sc")       # SC keeps the edge


class TestExecutorCompliance:
    @pytest.mark.parametrize("model", [SC, TSO, WEAK], ids=lambda m: m.name)
    def test_forbidden_outcomes_never_appear(self, model):
        for lt in extended_litmus_tests():
            if lt.allowed[model.name]:
                continue
            ex = OperationalExecutor(lt.program, model, seed=5, tuning=_STRESS)
            for e in ex.run(600):
                hit = all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
                if hit and lt.interesting_ws is not None:
                    hit = all(e.ws.get(a) == c for a, c in lt.interesting_ws.items())
                assert not hit, (lt.name, model.name)

    def test_tso_allowed_outcomes_appear(self):
        for lt in extended_litmus_tests():
            if not lt.allowed["tso"] or lt.allowed["sc"]:
                continue
            ex = OperationalExecutor(lt.program, TSO, seed=5, tuning=_STRESS)
            seen = False
            for e in ex.run(6000):
                hit = all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
                if hit and lt.interesting_ws is not None:
                    hit = all(e.ws.get(a) == c for a, c in lt.interesting_ws.items())
                if hit:
                    seen = True
                    break
            assert seen, lt.name

    def test_weak_only_outcomes_appear(self):
        for lt in extended_litmus_tests():
            if not lt.allowed["weak"] or lt.allowed["tso"]:
                continue
            ex = OperationalExecutor(lt.program, WEAK, seed=5, tuning=_STRESS)
            seen = False
            for e in ex.run(8000):
                hit = all(e.rf.get(k) == v for k, v in lt.interesting_rf.items())
                if hit and lt.interesting_ws is not None:
                    hit = all(e.ws.get(a) == c for a, c in lt.interesting_ws.items())
                if hit:
                    seen = True
                    break
            assert seen, lt.name
