"""Unit + property tests for weight assignment and per-thread signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignatureError
from repro.instrument import SignatureCodec, build_weight_tables, candidate_sources
from repro.testgen import TestConfig, generate


class TestFigure3Weights:
    """Weight multipliers from the paper's Figure 3, step 2."""

    def test_first_load_uses_unit_weights(self, figure3_program):
        tables = build_weight_tables(figure3_program, 64)
        slot = tables[0].slots[0]       # load (2): {1, 6, 9}
        assert slot.multiplier == 1
        assert len(slot.candidates) == 3

    def test_second_load_uses_multiples_of_three(self, figure3_program):
        tables = build_weight_tables(figure3_program, 64)
        slot = tables[0].slots[1]       # load (3): weights 0,3,6,9
        assert slot.multiplier == 3
        assert len(slot.candidates) == 4

    def test_paper_example_signature_value(self, figure3_program):
        """Observing (9) for load (2) and (8) for load (3) gives sig 8."""
        p = figure3_program
        tables = build_weight_tables(p, 64)
        st9 = p.store_with_value(9).uid
        st8 = p.store_with_value(8).uid
        ld2, ld3 = (s.uid for s in tables[0].slots)
        words = tables[0].encode({ld2: st9, ld3: st8})
        assert words == (2 + 6,)

    def test_thread2_has_no_loads(self, figure3_program):
        tables = build_weight_tables(figure3_program, 64)
        assert tables[2].slots == []
        assert tables[2].num_words == 1
        assert tables[2].encode({}) == (0,)


class TestOverflow:
    def test_multi_word_split(self):
        p = generate(TestConfig(threads=4, ops_per_thread=60, addresses=8, seed=3))
        tables = build_weight_tables(p, 8)     # tiny 8-bit registers
        assert any(t.num_words > 1 for t in tables)
        for t in tables:
            limit = 1 << 8
            # every word's value range stays within the register
            products = {}
            for slot in t.slots:
                products[slot.word] = products.get(slot.word, 1) * len(slot.candidates)
            for product in products.values():
                assert product <= limit

    def test_multiplier_resets_on_new_word(self):
        p = generate(TestConfig(threads=2, ops_per_thread=60, addresses=8, seed=3))
        tables = build_weight_tables(p, 8)
        for t in tables:
            seen_words = set()
            for slot in t.slots:
                if slot.word not in seen_words:
                    assert slot.multiplier == 1
                    seen_words.add(slot.word)

    def test_wider_register_means_fewer_words(self):
        p = generate(TestConfig(threads=2, ops_per_thread=100, addresses=8, seed=3))
        narrow = sum(t.num_words for t in build_weight_tables(p, 16))
        wide = sum(t.num_words for t in build_weight_tables(p, 64))
        assert wide < narrow

    def test_invalid_register_width(self, figure3_program):
        with pytest.raises(ValueError):
            build_weight_tables(figure3_program, 0)


class TestEncodeDecode:
    def test_decode_rejects_wrong_word_count(self, small_codec):
        table = small_codec.tables[0]
        with pytest.raises(SignatureError):
            table.decode((0,) * (table.num_words + 1))

    def test_decode_rejects_out_of_range_word(self, small_codec):
        table = small_codec.tables[0]
        huge = tuple(table.cardinality + 5 for _ in range(table.num_words))
        with pytest.raises(SignatureError):
            table.decode(huge)

    def test_encode_rejects_foreign_source(self, small_program, small_codec):
        table = small_codec.tables[0]
        if not table.slots:
            pytest.skip("thread has no loads")
        rf = {slot.uid: slot.candidates[0] for slot in table.slots}
        rf[table.slots[0].uid] = 10 ** 9   # not a candidate
        with pytest.raises(SignatureError):
            table.encode(rf)

    def test_byte_size(self, small_codec):
        for table in small_codec.tables:
            assert table.byte_size == table.num_words * 4   # 32-bit


@st.composite
def rf_choices(draw):
    """A generated program plus a random valid rf assignment."""
    seed = draw(st.integers(0, 10_000))
    threads = draw(st.integers(1, 4))
    ops = draw(st.integers(1, 40))
    addrs = draw(st.integers(1, 16))
    width = draw(st.sampled_from([8, 16, 32, 64]))
    program = generate(TestConfig(threads=threads, ops_per_thread=ops,
                                  addresses=addrs, seed=seed))
    cands = candidate_sources(program)
    rf = {uid: draw(st.sampled_from(sources)) for uid, sources in cands.items()}
    return program, rf, width


class TestRoundTripProperty:
    @given(rf_choices())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip(self, case):
        """decode(encode(rf)) == rf for every valid rf (1:1 mapping)."""
        program, rf, width = case
        codec = SignatureCodec(program, width)
        assert codec.decode(codec.encode(rf)) == rf

    @given(rf_choices())
    @settings(max_examples=30, deadline=None)
    def test_distinct_rf_distinct_signatures(self, case):
        """Different interleavings never collide (uniqueness guarantee)."""
        program, rf, width = case
        codec = SignatureCodec(program, width)
        loads = list(rf)
        if not loads:
            return
        # perturb one load to a different candidate, if it has one
        cands = codec.candidates[loads[0]]
        if len(cands) < 2:
            return
        other = dict(rf)
        current = rf[loads[0]]
        other[loads[0]] = next(c for c in cands if c != current)
        assert codec.encode(other) != codec.encode(rf)


class TestRadixOverflowGuard:
    def test_single_load_radix_exceeding_register_rejected(self):
        """Regression: a candidate set larger than the register range
        cannot be represented at all; it must raise instead of silently
        emitting an over-range signature word."""
        p = generate(TestConfig(threads=4, ops_per_thread=60, addresses=2, seed=1))
        with pytest.raises(SignatureError):
            build_weight_tables(p, 4)       # 4-bit registers, ~40 candidates
