"""Unit tests for OS perturbation and platform presets."""

import random

from repro.sim import (
    ARM_BIG_LITTLE,
    GEM5_X86_8CORE,
    OSConfig,
    OSModel,
    OperationalExecutor,
    X86_DESKTOP,
    platform_for_isa,
)
from repro.mcm import WEAK
from repro.testgen import TestConfig, generate


class TestPlatformPresets:
    def test_table1_x86(self):
        assert X86_DESKTOP.num_cores == 4
        assert X86_DESKTOP.memory_model_name == "tso"
        assert X86_DESKTOP.register_width == 64

    def test_table1_arm(self):
        assert ARM_BIG_LITTLE.num_cores == 8
        assert ARM_BIG_LITTLE.memory_model_name == "weak"
        assert ARM_BIG_LITTLE.register_width == 32
        # little cores are slower
        speeds = ARM_BIG_LITTLE.thread_speeds(8)
        assert speeds[0] == 1.0 and speeds[7] > 1.0

    def test_gem5_platform(self):
        assert GEM5_X86_8CORE.num_cores == 8
        assert GEM5_X86_8CORE.memory_model_name == "tso"

    def test_lookup_by_isa(self):
        assert platform_for_isa("x86") is X86_DESKTOP
        assert platform_for_isa("arm") is ARM_BIG_LITTLE

    def test_unknown_isa(self):
        import pytest

        with pytest.raises(ValueError):
            platform_for_isa("sparc")

    def test_thread_allocation_wraps_cores(self):
        speeds = X86_DESKTOP.thread_speeds(7)
        assert len(speeds) == 7

    def test_memory_model_resolution(self):
        assert X86_DESKTOP.memory_model.name == "tso"


class TestOSModel:
    def test_perturbation_nonnegative(self):
        os = OSModel(random.Random(1), 2, 8)
        assert all(os.perturb(10.0) >= 0 for _ in range(100))

    def test_more_threads_preempt_more(self):
        cfg = OSConfig(access_jitter=0.0)
        few = OSModel(random.Random(1), 2, 8, cfg)
        many = OSModel(random.Random(1), 7, 8, cfg)
        few_total = sum(few.perturb(10.0) for _ in range(4000))
        many_total = sum(many.perturb(10.0) for _ in range(4000))
        assert many_total > few_total

    def test_jitter_without_preemption(self):
        cfg = OSConfig(access_jitter=5.0, preempt_rate_per_kcycle=0.0)
        os = OSModel(random.Random(2), 2, 8, cfg)
        extras = [os.perturb(10.0) for _ in range(200)]
        assert all(0 <= e <= 5.0 for e in extras)
        assert any(e > 0 for e in extras)

    def test_integrates_with_executor(self):
        cfg = TestConfig(threads=2, ops_per_thread=20, addresses=8, seed=3)
        p = generate(cfg)
        os = OSModel(random.Random(4), 2, 8)
        ex = OperationalExecutor(p, WEAK, seed=1, os_model=os)
        e = ex.run_one()
        assert set(e.rf) == {op.uid for op in p.loads}
