"""Tests for the TCP worker pool (repro.fleet.remote)."""

import socket
import threading
import time

import pytest

from repro.fleet import merge_campaign_results, plan_campaign_tasks
from repro.fleet.remote import (
    TcpWorkerPool,
    remote_worker_main,
    task_from_doc,
    task_to_doc,
)
from repro.harness import Campaign, check_campaign_result
from repro.io import dump_campaign, load_campaign
from repro.serve.protocol import PROTOCOL_VERSION, write_frame_socket
from repro.testgen import TestConfig, generate

CONFIG = TestConfig(isa="arm", threads=2, ops_per_thread=15,
                    addresses=8, seed=21)


def _worker_thread(pool, name="w", tasks_limit=None):
    thread = threading.Thread(
        target=remote_worker_main, args=(pool.host, pool.port),
        kwargs={"name": name, "tasks_limit": tasks_limit}, daemon=True)
    thread.start()
    return thread


def _zombie(pool, name="zombie"):
    """A worker that joins, then never answers anything."""
    sock = socket.create_connection((pool.host, pool.port))
    write_frame_socket(sock, {"kind": "join", "v": PROTOCOL_VERSION,
                              "name": name})
    return sock


class TestTaskDocs:
    def test_round_trip(self):
        program = generate(CONFIG)
        task = plan_campaign_tasks(program, CONFIG, 120, 2, seed=3,
                                   block=30)[0]
        assert task_from_doc(task_to_doc(task)) == task

    def test_round_trip_without_config(self):
        program = generate(CONFIG)
        task = plan_campaign_tasks(program, None, 60, 1, seed=1,
                                   block=30)[0]
        assert task_from_doc(task_to_doc(task)) == task


class TestShardTasks:
    def test_remote_merge_is_identical_to_serial(self):
        """Two remote workers stealing shard tasks produce the serial
        run's exact signature multiset (same seed-block plan)."""
        program = generate(CONFIG)
        tasks = plan_campaign_tasks(program, CONFIG, 120, 3, seed=3,
                                    block=30)
        with TcpWorkerPool(grace_s=10.0) as pool:
            for index in range(2):
                _worker_thread(pool, name="w%d" % index)
            assert pool.wait_for_workers(2) == 2
            outcomes = pool.run(tasks)
        assert not any(o.crashed for o in outcomes)
        merged = merge_campaign_results(
            [load_campaign(o.payload) for o in outcomes])
        serial = Campaign(config=CONFIG, seed=3).run(120, block=30)
        assert merged.signature_counts == serial.signature_counts
        assert merged.iterations == serial.iterations


class TestCheckTasks:
    def test_check_remote_matches_local_checking(self):
        result = Campaign(config=CONFIG, seed=4).run(150)
        with TcpWorkerPool(grace_s=10.0) as pool:
            _worker_thread(pool, tasks_limit=1)
            assert pool.wait_for_workers(1) == 1
            digest = pool.check_remote(dump_campaign(result))
        local = check_campaign_result(result, baseline=False,
                                      pipeline="delta").collective
        assert digest["summary"] == local.summary()
        assert digest["unique"] == result.unique_signatures
        assert digest["violations"] == []


class TestWorkerDeath:
    def test_silent_worker_becomes_bug3_crash_outcome(self):
        """A worker that joins then never heartbeats is declared dead;
        with retries exhausted its shard is the paper's bug-3 crash."""
        program = generate(CONFIG)
        tasks = plan_campaign_tasks(program, CONFIG, 30, 1, seed=3,
                                    block=30)
        with TcpWorkerPool(heartbeat_timeout_s=0.4, max_retries=0,
                           grace_s=0.5) as pool:
            sock = _zombie(pool)
            assert pool.wait_for_workers(1) == 1
            outcomes = pool.run(tasks)
            sock.close()
        assert outcomes[0].crashed
        assert outcomes[0].payload is None
        assert "died" in outcomes[0].error

    def test_requeued_task_is_stolen_by_a_live_worker(self):
        """Work stealing after death: the zombie's task re-queues and a
        later-joining live worker completes it."""
        program = generate(CONFIG)
        tasks = plan_campaign_tasks(program, CONFIG, 30, 1, seed=3,
                                    block=30)
        with TcpWorkerPool(heartbeat_timeout_s=0.4, max_retries=1,
                           grace_s=10.0) as pool:
            sock = _zombie(pool)
            assert pool.wait_for_workers(1) == 1
            box = {}
            runner = threading.Thread(
                target=lambda: box.update(outcomes=pool.run(tasks)))
            runner.start()
            time.sleep(0.2)          # let the zombie take the task
            _worker_thread(pool, name="rescuer")
            runner.join(30)
            sock.close()
        assert not runner.is_alive()
        outcome = box["outcomes"][0]
        assert not outcome.crashed
        assert outcome.attempts == 2
        assert load_campaign(outcome.payload).iterations == 30

    def test_no_workers_crashes_the_plan_after_grace(self):
        program = generate(CONFIG)
        tasks = plan_campaign_tasks(program, CONFIG, 30, 2, seed=3,
                                    block=15)
        with TcpWorkerPool(grace_s=0.2) as pool:
            outcomes = pool.run(tasks)
        assert all(o.crashed for o in outcomes)
        assert all(o.error == "no remote workers connected"
                   for o in outcomes)

    def test_second_run_refused_while_one_is_in_flight(self):
        from repro.serve.protocol import ProtocolError

        with TcpWorkerPool(grace_s=0.1) as pool:
            pool.run([])             # empty: returns immediately
            box = {}
            runner = threading.Thread(
                target=lambda: box.update(o=pool.run(
                    [("check", "{}", None)])))
            runner.start()
            time.sleep(0.05)
            with pytest.raises(ProtocolError):
                pool.run([("check", "{}", None)])
            runner.join(10)
