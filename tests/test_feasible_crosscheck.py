"""Cross-oracle tests: the verdict table and the agreement contract."""

from types import SimpleNamespace

import pytest

from repro import obs as repro_obs
from repro.feasible import (
    AGREE_CLEAN,
    AGREE_VIOLATION,
    CHECKER_FALSE_ALARM,
    CHECKER_MISS,
    CrossCheckReport,
    SignatureVerdict,
    cross_check_outcome,
    enumerate_feasible,
)
from repro.harness import Campaign
from repro.instrument import SignatureCodec
from repro.mcm import get_model
from repro.testgen import TestConfig
from repro.testgen.litmus import all_litmus_tests


def _mp():
    for lt in all_litmus_tests():
        if lt.name == "MP":
            return lt.program
    raise KeyError("MP")


class TestVerdictTable:
    CASES = [
        (True, False, AGREE_CLEAN, False),
        (False, True, AGREE_VIOLATION, False),
        (False, False, CHECKER_MISS, True),
        (True, True, CHECKER_FALSE_ALARM, True),
    ]

    @pytest.mark.parametrize("feasible,violation,kind,disagree", CASES)
    def test_kinds(self, feasible, violation, kind, disagree):
        v = SignatureVerdict(0, "sig", feasible, violation)
        assert v.kind == kind
        assert v.disagreement == disagree

    def test_disagreement_iff_feasible_equals_violation(self):
        for feasible, violation, _, disagree in self.CASES:
            assert disagree == (feasible == violation)

    def test_report_counts_and_agreement(self):
        fset = enumerate_feasible(_mp(), get_model("tso"),
                                  codec=SignatureCodec(_mp(), 64))
        report = CrossCheckReport("MP", "tso", fset)
        report.verdicts = [SignatureVerdict(i, "s%d" % i, f, v)
                           for i, (f, v, _, _) in enumerate(self.CASES)]
        assert report.count(AGREE_CLEAN) == 1
        assert report.count(CHECKER_MISS) == 1
        assert len(report.out_of_set) == 2
        assert len(report.disagreements) == 2
        assert not report.agreement
        assert report.observed_feasible == 2

    def test_summary_json_and_render(self):
        fset = enumerate_feasible(_mp(), get_model("tso"),
                                  codec=SignatureCodec(_mp(), 64))
        report = CrossCheckReport("MP", "tso", fset)
        report.verdicts = [SignatureVerdict(0, s, True, False)
                           for s in fset.sorted_signatures()[:2]]
        doc = report.summary_json()
        assert doc["agreement"] is True
        assert doc["feasible"] == 3
        assert doc["coverage"] == pytest.approx(2 / 3, abs=1e-3)
        text = report.render()
        assert "verdict: AGREE" in text
        assert "coverage: 2/3" in text


def _checked_campaign(seed=1, iterations=200):
    cfg = TestConfig(isa="x86", threads=2, ops_per_thread=6, addresses=2,
                     seed=5)
    campaign = Campaign(config=cfg, seed=seed)
    result = campaign.run(iterations)
    return campaign, result, campaign.check(result)


class TestCrossCheckOutcome:
    def test_clean_campaign_agrees(self):
        campaign, result, outcome = _checked_campaign()
        xc = cross_check_outcome(result, outcome, campaign.model)
        assert xc.agreement
        assert not xc.out_of_set
        assert len(xc.verdicts) == result.unique_signatures
        assert xc.count(AGREE_CLEAN) == len(xc.verdicts)
        assert xc.coverage is not None and 0 < xc.coverage <= 1

    def test_default_model_matches_register_width(self):
        _, result, outcome = _checked_campaign()
        xc = cross_check_outcome(result, outcome)  # 64-bit -> tso
        assert xc.model_name == "tso"
        assert xc.agreement

    def test_membership_miss_is_checker_miss(self):
        """A signature outside the feasible set that the checker passed."""
        program = _mp()
        codec = SignatureCodec(program, 64)
        model = get_model("tso")
        fset = enumerate_feasible(program, model, codec=codec)
        import itertools

        uids = sorted(codec.candidates)
        infeasible = [
            codec.encode(dict(zip(uids, combo)))
            for combo in itertools.product(
                *(codec.candidates[u] for u in uids))
        ]
        infeasible = [s for s in infeasible if s not in fset]
        assert infeasible  # MP forbids one outcome under tso
        result = SimpleNamespace(program=program, codec=codec)
        outcome = SimpleNamespace(
            signatures=[infeasible[0]],
            collective=SimpleNamespace(violations=[]))
        xc = cross_check_outcome(result, outcome, model)
        assert xc.count(CHECKER_MISS) == 1
        assert not xc.agreement

    def test_false_alarm_on_feasible_signature(self):
        program = _mp()
        codec = SignatureCodec(program, 64)
        model = get_model("tso")
        fset = enumerate_feasible(program, model, codec=codec)
        member = fset.sorted_signatures()[0]
        result = SimpleNamespace(program=program, codec=codec)
        outcome = SimpleNamespace(
            signatures=[member],
            collective=SimpleNamespace(violations=[SimpleNamespace(index=0)]))
        xc = cross_check_outcome(result, outcome, model)
        assert xc.count(CHECKER_FALSE_ALARM) == 1
        assert not xc.agreement

    def test_sampled_membership_stays_exact(self):
        """Tiny budget forces sampling; per-signature verdicts don't change."""
        campaign, result, outcome = _checked_campaign()
        exact = cross_check_outcome(result, outcome, campaign.model)
        sampled = cross_check_outcome(result, outcome, campaign.model,
                                      budget=1, samples=4)
        assert not sampled.feasible_set.exhaustive
        assert sampled.coverage is None
        assert [v.feasible for v in sampled.verdicts] == \
            [v.feasible for v in exact.verdicts]

    def test_obs_event_and_gauges(self):
        campaign, result, outcome = _checked_campaign(iterations=50)
        handle = repro_obs.enable()
        try:
            xc = cross_check_outcome(result, outcome, campaign.model)
            events = [e for e in handle.events.events()
                      if e.kind == "feasible.crosscheck"]
            snap = handle.metrics.snapshot()
        finally:
            repro_obs.disable()
        assert len(events) == 1
        assert events[0].data["agreement"] is True
        assert snap["feasible.crosscheck.signatures"]["value"] == \
            len(xc.verdicts)
        assert snap["feasible.coverage.feasible"]["value"] == \
            xc.feasible_set.feasible_count

    def test_to_json_round_trip_fields(self):
        campaign, result, outcome = _checked_campaign(iterations=50)
        xc = cross_check_outcome(result, outcome, campaign.model)
        doc = xc.to_json()
        assert doc["program"] == result.program.name
        assert doc["feasible_set"]["exhaustive"] is True
        assert len(doc["verdicts"]) == len(xc.verdicts)
        assert all(v["kind"] == AGREE_CLEAN for v in doc["verdicts"])
