"""Unit tests for crash-tolerant worker supervision.

These interpose stub worker entry points (the supervisor's ``target``
hook) so process-death handling is exercised without paying for real
campaigns in every test.
"""

import os
import time

from repro import obs
from repro.fleet import FleetConfig, FleetSupervisor, WorkerTask
from repro.fleet.supervisor import ShardOutcome

TASK = WorkerTask(program_doc={"name": "stub", "listing": ""},
                  blocks=((0, 25),))


def _ok_worker(task, conn):
    conn.send(("ok", "payload-%d" % task.blocks[0][0], None))
    conn.close()


def _dying_worker(task, conn):
    os._exit(3)


def _error_worker(task, conn):
    conn.send(("error", "synthetic failure", None))
    conn.close()
    os._exit(1)


def _sleepy_worker(task, conn):
    time.sleep(60)


def _bulky_worker(task, conn):
    # a hand-off far larger than any OS pipe buffer: send() blocks until
    # the supervisor drains it, so a join-before-recv host would push
    # this shard into the timeout path instead of completing instantly
    conn.send(("ok", "x" * 4_000_000, None))
    conn.close()


def _flaky_worker(task, conn):
    """Dies on the first launch, succeeds on the retry (via a flag file)."""
    flag = task.program_doc["flag"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(3)
    conn.send(("ok", "recovered", None))
    conn.close()


class TestSupervisor:
    def test_successful_shards(self):
        supervisor = FleetSupervisor(FleetConfig(jobs=2), target=_ok_worker)
        tasks = [WorkerTask(program_doc=TASK.program_doc, blocks=((i, 10),))
                 for i in range(3)]
        outcomes = supervisor.run(tasks)
        assert [o.payload for o in outcomes] == ["payload-0", "payload-1",
                                                "payload-2"]
        assert all(not o.crashed and o.attempts == 1 for o in outcomes)

    def test_empty_task_list(self):
        assert FleetSupervisor().run([]) == []

    def test_worker_death_becomes_crash_outcome(self):
        supervisor = FleetSupervisor(FleetConfig(jobs=1, max_retries=1),
                                     target=_dying_worker)
        outcome, = supervisor.run([TASK])
        assert outcome.crashed
        assert outcome.attempts == 2            # first try + one retry
        assert outcome.iterations == 25
        assert "exit code 3" in outcome.error

    def test_handled_error_message_propagates(self):
        supervisor = FleetSupervisor(FleetConfig(max_retries=0),
                                     target=_error_worker)
        outcome, = supervisor.run([TASK])
        assert outcome.crashed
        assert outcome.error == "synthetic failure"

    def test_handoff_larger_than_pipe_buffer_completes(self):
        supervisor = FleetSupervisor(
            FleetConfig(jobs=1, timeout_s=30.0, max_retries=0),
            target=_bulky_worker)
        start = time.monotonic()
        outcome, = supervisor.run([TASK])
        assert not outcome.crashed
        assert len(outcome.payload) == 4_000_000
        assert time.monotonic() - start < 25.0  # drained, not timed out

    def test_timeout_kills_and_records_crash(self):
        supervisor = FleetSupervisor(
            FleetConfig(jobs=1, timeout_s=0.2, max_retries=0),
            target=_sleepy_worker)
        outcome, = supervisor.run([TASK])
        assert outcome.crashed
        assert "timed out" in outcome.error

    def test_retry_recovers_flaky_worker(self, tmp_path):
        task = WorkerTask(
            program_doc={"name": "stub", "listing": "",
                         "flag": str(tmp_path / "flaky")},
            blocks=((0, 10),))
        supervisor = FleetSupervisor(FleetConfig(max_retries=1),
                                     target=_flaky_worker)
        outcome, = supervisor.run([task])
        assert not outcome.crashed
        assert outcome.payload == "recovered"
        assert outcome.attempts == 2

    def test_crash_never_raises_and_other_shards_finish(self):
        def route(task, conn):
            (_dying_worker if task.blocks[0][0] == 0 else _ok_worker)(
                task, conn)

        supervisor = FleetSupervisor(FleetConfig(jobs=2, max_retries=0),
                                     target=route)
        tasks = [WorkerTask(program_doc=TASK.program_doc, blocks=((i, 10),))
                 for i in range(2)]
        bad, good = supervisor.run(tasks)
        assert bad.crashed and not good.crashed

    def test_metrics_recorded(self):
        with obs.enabled_obs() as handle:
            FleetSupervisor(FleetConfig(max_retries=1),
                            target=_dying_worker).run([TASK])
            metrics = handle.metrics
            assert metrics.get("fleet.workers_launched").value == 2
            assert metrics.get("fleet.worker_retries").value == 1
            assert metrics.get("fleet.worker_deaths").value == 2
            assert metrics.get("fleet.shards_crashed").value == 1
            assert metrics.get("fleet.shard_seconds").count == 1
            assert handle.tracer.node("fleet.shard") is not None


class TestShardOutcome:
    def test_crashed_property(self):
        assert ShardOutcome(0, 10).crashed
        assert not ShardOutcome(0, 10, payload="{}").crashed
