"""Unit + property tests for topological sorting and cycle extraction."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graph import find_cycle, topological_sort


def is_topological(order, adjacency):
    pos = {v: i for i, v in enumerate(order)}
    return all(pos[u] < pos[w]
               for u in order for w in adjacency.get(u, ()) if w in pos)


class TestTopologicalSort:
    def test_chain(self):
        adj = {0: [1], 1: [2], 2: [3]}
        assert topological_sort(range(4), adj) == [0, 1, 2, 3]

    def test_cycle_returns_none(self):
        assert topological_sort(range(3), {0: [1], 1: [2], 2: [0]}) is None

    def test_self_edges_outside_vertex_set_ignored(self):
        adj = {0: [1], 1: [99]}            # 99 not in the sorted set
        assert topological_sort(range(2), adj) == [0, 1]

    def test_subset_sorting_ignores_external_cycle(self):
        # cycle 2->3->2 exists, but we only sort {0, 1}
        adj = {0: [1], 2: [3], 3: [2]}
        assert topological_sort([0, 1], adj) == [0, 1]

    def test_empty(self):
        assert topological_sort([], {}) == []

    def test_key_controls_tie_breaking(self):
        adj = {}
        order = topological_sort([3, 1, 2], adj, key=lambda v: -v)
        assert order == [3, 2, 1]

    def test_key_respects_edges(self):
        adj = {2: [1]}
        order = topological_sort([1, 2, 3], adj, key=lambda v: v)
        assert order.index(2) < order.index(1)
        assert is_topological(order, adj)

    def test_deterministic_without_key(self):
        adj = {0: [2]}
        a = topological_sort([2, 0, 1], adj)
        b = topological_sort([2, 0, 1], adj)
        assert a == b


class TestFindCycle:
    def test_finds_simple_cycle(self):
        adj = {0: [1], 1: [2], 2: [0]}
        cycle = find_cycle(range(3), adj)
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {0, 1, 2}

    def test_cycle_edges_exist(self):
        adj = {0: [1], 1: [2, 3], 3: [1], 2: []}
        cycle = find_cycle(range(4), adj)
        for u, v in zip(cycle, cycle[1:]):
            assert v in adj.get(u, ())

    def test_acyclic_returns_none(self):
        assert find_cycle(range(3), {0: [1], 1: [2]}) is None

    def test_restricted_vertex_set(self):
        adj = {0: [1], 1: [0], 2: [3]}
        assert find_cycle([2, 3], adj) is None
        assert find_cycle([0, 1], adj) is not None


@st.composite
def random_digraph(draw):
    n = draw(st.integers(1, 25))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=80))
    adj = {}
    for u, v in edges:
        if u != v:
            adj.setdefault(u, []).append(v)
    return n, adj


class TestPrecomputedMembership:
    """The optional ``membership`` fast path must never change results."""

    def member_fn(self, vertices, universe=128):
        # sized over the whole vertex universe, as the delta checker's
        # window flags are: membership must answer for any vertex the
        # adjacency map can reach, not just the sorted subset
        flags = bytearray(universe)
        for v in vertices:
            flags[v] = 1
        return flags.__getitem__

    def test_sort_matches_default_membership(self):
        adj = {0: [1], 1: [99], 2: [3], 3: [2]}   # 99 external, 2-3 cyclic
        window = [0, 1]
        assert topological_sort(window, adj, membership=self.member_fn(window)) \
            == topological_sort(window, adj)

    def test_sort_detects_cycle_with_membership(self):
        adj = {0: [1], 1: [0]}
        window = [0, 1]
        assert topological_sort(window, adj,
                                membership=self.member_fn(window)) is None

    def test_sort_key_composes_with_membership(self):
        adj = {2: [1]}
        window = [1, 2, 3]
        order = topological_sort(window, adj, key=lambda v: v,
                                 membership=self.member_fn(window))
        assert order == topological_sort(window, adj, key=lambda v: v)
        assert is_topological(order, adj)

    def test_find_cycle_matches_default_membership(self):
        adj = {0: [1], 1: [2, 3], 3: [1], 2: []}
        window = list(range(4))
        assert find_cycle(window, adj, membership=self.member_fn(window)) \
            == find_cycle(window, adj)

    def test_find_cycle_respects_membership_restriction(self):
        adj = {0: [1], 1: [0], 2: [3]}
        assert find_cycle([2, 3], adj, membership=self.member_fn([2, 3])) is None

    @given(random_digraph())
    @settings(max_examples=60, deadline=None)
    def test_property_membership_equivalence(self, case):
        n, adj = case
        member = self.member_fn(list(range(n)))
        default = topological_sort(range(n), adj)
        fast = topological_sort(range(n), adj, membership=member)
        assert fast == default
        if default is None:
            assert find_cycle(range(n), adj, membership=member) == \
                find_cycle(range(n), adj)


class TestAgainstNetworkx:
    @given(random_digraph())
    @settings(max_examples=120, deadline=None)
    def test_matches_networkx_acyclicity(self, case):
        n, adj = case
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from((u, v) for u, vs in adj.items() for v in vs)
        ours = topological_sort(range(n), adj)
        theirs_acyclic = nx.is_directed_acyclic_graph(g)
        assert (ours is not None) == theirs_acyclic
        if ours is not None:
            assert is_topological(ours, adj)
            assert sorted(ours) == list(range(n))
        else:
            cycle = find_cycle(range(n), adj)
            assert cycle is not None
            for u, v in zip(cycle, cycle[1:]):
                assert v in adj.get(u, ())
